// Tests for the GaP baseline scheduler and checkpoint serialization.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "methods/gap.hpp"
#include "models/mlp.hpp"
#include "sparse/stats.hpp"
#include "train/checkpoint.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

struct GapHarness {
  GapHarness()
      : rng(3),
        model(make_cfg(), rng),
        smodel(model, 0.9, sparse::DistributionKind::kErk, rng) {}

  static models::MlpConfig make_cfg() {
    models::MlpConfig cfg;
    cfg.in_features = 16;
    cfg.hidden = {32, 32, 32};
    cfg.out_features = 8;  // four sparsifiable layers total
    return cfg;
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
};

TEST(Gap, FirstPartitionStartsDense) {
  GapHarness h;
  methods::GapConfig cfg;
  cfg.num_partitions = 2;
  cfg.phase_iterations = 10;
  cfg.sparsity = 0.9;
  methods::GapScheduler gap(h.smodel, cfg);
  EXPECT_EQ(gap.active_partition(), 0u);
  // Layers 0 and 2 are partition 0 → dense; layers 1, 3 stay sparse.
  EXPECT_DOUBLE_EQ(h.smodel.layer(0).density(), 1.0);
  EXPECT_DOUBLE_EQ(h.smodel.layer(2).density(), 1.0);
  EXPECT_LT(h.smodel.layer(1).density(), 0.5);
}

TEST(Gap, RotationPrunesOldAndDensifiesNext) {
  GapHarness h;
  methods::GapConfig cfg;
  cfg.num_partitions = 2;
  cfg.phase_iterations = 10;
  cfg.sparsity = 0.9;
  methods::GapScheduler gap(h.smodel, cfg);
  EXPECT_FALSE(gap.maybe_rotate(h.smodel, 5));
  EXPECT_TRUE(gap.maybe_rotate(h.smodel, 10));
  EXPECT_EQ(gap.active_partition(), 1u);
  EXPECT_EQ(gap.rotations(), 1u);
  // Old partition pruned back, new one dense.
  EXPECT_LT(h.smodel.layer(0).density(), 0.5);
  EXPECT_DOUBLE_EQ(h.smodel.layer(1).density(), 1.0);
  EXPECT_EQ(sparse::validate_invariants(h.smodel), "");
}

TEST(Gap, FullCycleCoversEveryPartition) {
  GapHarness h;
  methods::GapConfig cfg;
  cfg.num_partitions = 4;
  cfg.phase_iterations = 5;
  methods::GapScheduler gap(h.smodel, cfg);
  std::set<std::size_t> seen{gap.active_partition()};
  for (std::size_t it = 5; it <= 20; it += 5) {
    gap.maybe_rotate(h.smodel, it);
    seen.insert(gap.active_partition());
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Gap, InvalidConfigsThrow) {
  GapHarness h;
  methods::GapConfig cfg;
  cfg.num_partitions = 1;
  EXPECT_THROW(methods::GapScheduler(h.smodel, cfg), util::CheckError);
  cfg.num_partitions = 100;  // more than the 4 layers
  EXPECT_THROW(methods::GapScheduler(h.smodel, cfg), util::CheckError);
}

TEST(Gap, PartitionAssignmentRoundRobin) {
  GapHarness h;
  methods::GapConfig cfg;
  cfg.num_partitions = 3;
  methods::GapScheduler gap(h.smodel, cfg);
  EXPECT_EQ(gap.partition_of(0), 0u);
  EXPECT_EQ(gap.partition_of(1), 1u);
  EXPECT_EQ(gap.partition_of(2), 2u);
  EXPECT_EQ(gap.partition_of(3), 0u);
}

// ---------------------------------------------------------------------------

struct CheckpointHarness {
  CheckpointHarness(std::uint64_t seed = 5)
      : rng(seed),
        model(make_cfg(), rng),
        smodel(model, 0.8, sparse::DistributionKind::kUniform, rng) {}

  static models::MlpConfig make_cfg() {
    models::MlpConfig cfg;
    cfg.in_features = 10;
    cfg.hidden = {20};
    cfg.out_features = 4;
    return cfg;
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
};

TEST(Checkpoint, RoundTripsValuesMasksAndCounters) {
  const std::string path = "test_ckpt/model.bin";
  CheckpointHarness a(5);
  a.smodel.accumulate_counters();  // make counters nontrivial
  train::save_checkpoint(path, a.model, &a.smodel);

  CheckpointHarness b(99);  // different init
  train::load_checkpoint(path, b.model, &b.smodel);

  const auto pa = a.model.parameters();
  const auto pb = b.model.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.equals(pb[i]->value)) << "param " << i;
  }
  for (std::size_t i = 0; i < a.smodel.num_layers(); ++i) {
    EXPECT_EQ(a.smodel.layer(i).mask().hamming_distance(
                  b.smodel.layer(i).mask()),
              0u);
    EXPECT_TRUE(a.smodel.layer(i).counter().equals(
        b.smodel.layer(i).counter()));
  }
  EXPECT_EQ(sparse::validate_invariants(b.smodel), "");
  std::filesystem::remove_all("test_ckpt");
}

TEST(Checkpoint, ValuesOnlyRoundTrip) {
  const std::string path = "test_ckpt/dense.bin";
  CheckpointHarness a(7);
  train::save_checkpoint(path, a.model);
  CheckpointHarness b(8);
  train::load_checkpoint(path, b.model);
  EXPECT_TRUE(a.model.parameters()[0]->value.equals(
      b.model.parameters()[0]->value));
  std::filesystem::remove_all("test_ckpt");
}

TEST(Checkpoint, ForwardIdenticalAfterReload) {
  const std::string path = "test_ckpt/fw.bin";
  CheckpointHarness a(9);
  a.model.set_training(false);
  const auto x = testing::random_tensor(tensor::Shape({3, 10}), 1);
  const auto before = a.model.forward(x);
  train::save_checkpoint(path, a.model, &a.smodel);
  CheckpointHarness b(10);
  b.model.set_training(false);
  train::load_checkpoint(path, b.model, &b.smodel);
  EXPECT_TRUE(b.model.forward(x).equals(before));
  std::filesystem::remove_all("test_ckpt");
}

TEST(Checkpoint, MissingFileThrows) {
  CheckpointHarness a(11);
  EXPECT_THROW(train::load_checkpoint("does/not/exist.bin", a.model),
               util::CheckError);
}

TEST(Checkpoint, StateCountMismatchDetected) {
  const std::string path = "test_ckpt/mismatch.bin";
  CheckpointHarness a(12);
  train::save_checkpoint(path, a.model);  // saved WITHOUT sparse state
  CheckpointHarness b(13);
  EXPECT_THROW(train::load_checkpoint(path, b.model, &b.smodel),
               util::CheckError);
  std::filesystem::remove_all("test_ckpt");
}

TEST(Checkpoint, CorruptedMagicRejected) {
  const std::string path = "test_ckpt/corrupt.bin";
  std::filesystem::create_directories("test_ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a checkpoint";
  }
  CheckpointHarness a(14);
  EXPECT_THROW(train::load_checkpoint(path, a.model), util::CheckError);
  std::filesystem::remove_all("test_ckpt");
}

}  // namespace
}  // namespace dstee
