// src/obs/ tests: the trace-ring seqlock contract (record/drain
// roundtrip, wrap-keeps-newest, sampling cadence, disabled no-ops, and a
// writers-vs-drain hammer that is TSan-clean by construction), Chrome
// trace JSON emission, ThreadTraceScope nesting, the metrics registry
// (counter/gauge/histogram semantics, pointer stability, Prometheus
// exposition), and OpProfile accumulation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST(ObsTrace, RecordDrainRoundtrip) {
  obs::TraceRecorder rec(64);
  rec.record(7, obs::SpanKind::kRequest, "request", 100, 50, 3);
  rec.record(7, obs::SpanKind::kQueue, "queue", 100, 20);
  rec.record(9, obs::SpanKind::kOp, "spmm", 130, 10, 2);

  const std::vector<obs::TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time, longer spans first on ties (parents precede
  // children when lanes render).
  EXPECT_STREQ(events[0].name, "request");
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[0].ts_ns, 100);
  EXPECT_EQ(events[0].dur_ns, 50);
  EXPECT_EQ(events[0].arg, 3u);
  EXPECT_EQ(events[0].kind, obs::SpanKind::kRequest);
  EXPECT_STREQ(events[1].name, "queue");
  EXPECT_EQ(events[1].dur_ns, 20);
  EXPECT_STREQ(events[2].name, "spmm");
  EXPECT_EQ(events[2].trace_id, 9u);
  EXPECT_EQ(events[2].kind, obs::SpanKind::kOp);
  // One recording thread -> one ring; drain does not clear.
  EXPECT_EQ(rec.num_rings(), 1u);
  EXPECT_EQ(rec.drain().size(), 3u);
}

TEST(ObsTrace, FullRingOverwritesOldestKeepsNewest) {
  obs::TraceRecorder rec(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    rec.record(1, obs::SpanKind::kOp, "op", /*ts_ns=*/i, /*dur_ns=*/1);
  }
  const std::vector<obs::TraceEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, static_cast<std::int64_t>(6 + i));
  }
}

TEST(ObsTrace, SamplesEveryNthRequestWithFreshIds) {
  obs::TraceRecorder rec(16);
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.sample(), 0u);  // disabled: one relaxed load, always 0

  rec.enable(3);
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.sample_every(), 3u);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t id = rec.sample();
    if (i % 3 == 0) {
      EXPECT_NE(id, 0u) << "submit " << i;
      ids.push_back(id);
    } else {
      EXPECT_EQ(id, 0u) << "submit " << i;
    }
  }
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);  // fresh, monotonically increasing ids
  EXPECT_LT(ids[1], ids[2]);

  rec.disable();
  EXPECT_EQ(rec.sample(), 0u);
  // sample_every == 0 is clamped to "every request".
  rec.enable(0);
  EXPECT_EQ(rec.sample_every(), 1u);
  EXPECT_NE(rec.sample(), 0u);
}

TEST(ObsTrace, RecordWithIdZeroIsANoOp) {
  obs::TraceRecorder rec(16);
  rec.record(0, obs::SpanKind::kOp, "op", 1, 1);
  EXPECT_TRUE(rec.drain().empty());
  EXPECT_EQ(rec.num_rings(), 0u);  // no ring even gets registered
}

// Writers hammer their own rings while the main thread drains
// concurrently. Every drained event must be internally consistent —
// each writer records tuples where ts == trace_id and arg == trace_id,
// so a logically torn slot (fields from two different writes) is
// detectable. The seqlock protocol must reject such slots.
TEST(ObsTrace, ConcurrentWritersVersusDrainNeverTearEvents) {
  static const char* const kNames[] = {"w0", "w1", "w2", "w3"};
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 4000;
  constexpr std::uint64_t kStride = 1'000'000;

  obs::TraceRecorder rec(128);
  std::atomic<bool> stop{false};

  const auto validate = [&](const std::vector<obs::TraceEvent>& events) {
    for (const obs::TraceEvent& ev : events) {
      const std::uint64_t writer = ev.trace_id / kStride;
      ASSERT_LT(writer, kWriters);
      EXPECT_STREQ(ev.name, kNames[writer]);
      EXPECT_EQ(static_cast<std::uint64_t>(ev.ts_ns), ev.trace_id);
      EXPECT_EQ(ev.arg, ev.trace_id);
      EXPECT_EQ(ev.kind, obs::SpanKind::kOp);
    }
  };

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (std::uint64_t i = 1; i <= kPerWriter; ++i) {
        const std::uint64_t id = w * kStride + i;
        rec.record(id, obs::SpanKind::kOp, kNames[w],
                   static_cast<std::int64_t>(id), 1, id);
      }
    });
  }
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      validate(rec.drain());
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();

  const std::vector<obs::TraceEvent> final_events = rec.drain();
  validate(final_events);
  // Quiescent drain sees exactly the newest ring_capacity events per ring.
  EXPECT_EQ(final_events.size(), kWriters * rec.ring_capacity());
  EXPECT_EQ(rec.num_rings(), kWriters);
}

TEST(ObsTrace, ChromeTraceJsonLanesAndRebasedTimestamps) {
  obs::TraceRecorder rec(16);
  // Request-scoped span -> pid 2 lane keyed by trace id; op span -> pid 1
  // lane keyed by ring id. ns stamps survive as µs with three decimals.
  rec.record(5, obs::SpanKind::kRequest, "request", 1'000'000, 5'000, 1);
  rec.record(5, obs::SpanKind::kOp, "spmm", 1'001'234, 1'500, 0);
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Process metadata for both lane families.
  EXPECT_NE(json.find("dstee workers"), std::string::npos);
  EXPECT_NE(json.find("sampled requests"), std::string::npos);
  // The request span renders on pid 2 with tid = trace id.
  EXPECT_NE(json.find("\"name\":\"request\",\"cat\":\"request\",\"ph\":\"X\","
                      "\"pid\":2,\"tid\":5"),
            std::string::npos);
  // The op span renders on pid 1 (worker lane).
  EXPECT_NE(json.find("\"name\":\"spmm\",\"cat\":\"op\",\"ph\":\"X\","
                      "\"pid\":1"),
            std::string::npos);
  // Timestamps rebase to the earliest event; sub-µs precision is kept.
  EXPECT_NE(json.find("\"ts\":0.000,\"dur\":5.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.234,\"dur\":1.500"), std::string::npos);
}

TEST(ObsTrace, ThreadNamesLabelRings) {
  obs::TraceRecorder rec(16);
  std::thread worker([&] {
    obs::set_thread_name("obs-test-worker");
    rec.record(1, obs::SpanKind::kOp, "op", 1, 1);
    obs::set_thread_name("");  // don't leak the name to pooled reuse
  });
  worker.join();
  const std::vector<std::string> labels = rec.ring_labels();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], "obs-test-worker");
}

TEST(ObsTrace, ThreadTraceScopeNestsAndRestores) {
  EXPECT_EQ(obs::current_trace_id(), 0u);
  {
    obs::ThreadTraceScope outer(5);
    EXPECT_EQ(obs::current_trace_id(), 5u);
    {
      obs::ThreadTraceScope inner(9);
      EXPECT_EQ(obs::current_trace_id(), 9u);
    }
    EXPECT_EQ(obs::current_trace_id(), 5u);
    // The scope is thread-local: a fresh thread sees no trace id.
    std::uint64_t seen = 99;
    std::thread other([&] { seen = obs::current_trace_id(); });
    other.join();
    EXPECT_EQ(seen, 0u);
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
}

TEST(ObsMetrics, CounterGaugeSemantics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.25);  // last write wins
  EXPECT_EQ(g.value(), -1.25);
}

TEST(ObsMetrics, HistogramBucketsAreLogSpacedAndCumulativeAtInf) {
  obs::Histogram h;
  // Boundaries are powers of two from 2^kMinExp.
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_le(0), std::ldexp(1.0, -10));
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_le(10), 1.0);
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  // Inclusive at the boundary, next bucket just above it.
  EXPECT_EQ(obs::Histogram::bucket_index(1.0), 10u);
  EXPECT_EQ(obs::Histogram::bucket_index(1.0001), 11u);
  // Beyond the last finite boundary -> the +Inf bucket.
  EXPECT_EQ(obs::Histogram::bucket_index(1e12), obs::Histogram::kNumBuckets);

  const double samples[] = {0.0005, 0.5, 3.0, 1e12};
  for (const double v : samples) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0005 + 0.5 + 3.0 + 1e12);
  for (const double v : samples) {
    EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_index(v)), 1u) << v;
  }
}

TEST(ObsMetrics, RegistryReturnsSameObjectForSameNameAndLabel) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("t_requests", "m0", "help text");
  obs::Counter& b = reg.counter("t_requests", "m0");
  EXPECT_EQ(&a, &b);  // pointer-stable get-or-create
  obs::Counter& other_label = reg.counter("t_requests", "m1");
  EXPECT_NE(&a, &other_label);
  obs::Gauge& g1 = reg.gauge("t_depth");
  EXPECT_EQ(&g1, &reg.gauge("t_depth"));
  obs::Histogram& h1 = reg.histogram("t_latency", "m0");
  EXPECT_EQ(&h1, &reg.histogram("t_latency", "m0"));
  EXPECT_EQ(reg.num_metrics(), 4u);
  // Same name, different kind: fails loudly instead of aliasing.
  EXPECT_THROW(reg.gauge("t_requests"), util::CheckError);
  EXPECT_THROW(reg.counter("bad name!"), util::CheckError);
}

TEST(ObsMetrics, SnapshotFlattensHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("t_total", "m0").add(3);
  reg.gauge("t_depth").set(2.5);
  obs::Histogram& h = reg.histogram("t_lat", "m0");
  h.observe(0.25);
  h.observe(0.75);

  const std::vector<obs::MetricsRegistry::Sample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);  // counter + gauge + histogram {_count,_sum}
  EXPECT_EQ(snap[0].name, "t_total");
  EXPECT_EQ(snap[0].label, "m0");
  EXPECT_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[1].name, "t_depth");
  EXPECT_EQ(snap[1].value, 2.5);
  EXPECT_EQ(snap[2].name, "t_lat_count");
  EXPECT_EQ(snap[2].value, 2.0);
  EXPECT_EQ(snap[3].name, "t_lat_sum");
  EXPECT_DOUBLE_EQ(snap[3].value, 1.0);
}

TEST(ObsMetrics, PrometheusTextExposition) {
  obs::MetricsRegistry reg;
  reg.counter("t_requests", "m0", "requests served").add(3);
  reg.counter("t_requests", "m1").add(1);
  reg.gauge("t_depth", "", "queue depth").set(2.5);
  obs::Histogram& h = reg.histogram("t_lat", "m0", "latency seconds");
  h.observe(0.002);
  h.observe(0.004);
  h.observe(5.0);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP t_requests requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_requests{model=\"m0\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_requests{model=\"m1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("t_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_bucket{model=\"m0\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_lat_count{model=\"m0\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_sum{model=\"m0\"}"), std::string::npos);
  // One # TYPE line per family even with several labeled series.
  EXPECT_EQ(count_occurrences(text, "# TYPE t_requests counter\n"), 1u);
}

TEST(ObsProfile, AccumulatesAcrossThreadsAndNormalizesShares) {
  obs::OpProfile profile(3);
  EXPECT_EQ(profile.size(), 3u);
  // Shares are all-zero until something is measured — the signal callers
  // use to fall back to the static cost model.
  for (const double s : profile.cost_shares()) EXPECT_EQ(s, 0.0);

  std::thread a([&] {
    for (int i = 0; i < 1000; ++i) profile.add(0, 1);
  });
  std::thread b([&] {
    for (int i = 0; i < 1000; ++i) profile.add(2, 3);
  });
  a.join();
  b.join();

  EXPECT_EQ(profile.node_ns(0), 1000);
  EXPECT_EQ(profile.node_calls(0), 1000u);
  EXPECT_EQ(profile.node_ns(1), 0);
  EXPECT_EQ(profile.node_calls(1), 0u);
  EXPECT_EQ(profile.node_ns(2), 3000);
  EXPECT_EQ(profile.total_ns(), 4000);
  const std::vector<double> shares = profile.cost_shares();
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_DOUBLE_EQ(shares[0], 0.25);
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
  EXPECT_DOUBLE_EQ(shares[2], 0.75);
}

}  // namespace
}  // namespace dstee
