// End-to-end tests for the QuantizeWeights pass: the weight-bytes
// reduction annotate() reports, int8 top-1 agreement with fp32 serving
// (MLP and ResNet-18, through a checkpoint round trip), composition with
// FuseEpilogue and PartitionRows, and delta patching of quantized plans.
// Numeric bit-identity between int8 and fp32 is NOT the contract here —
// the quantizer rounds values — so accuracy assertions are per-sample
// top-1 agreement, the metric the paper's deployment story cares about.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "serve/compiled_net.hpp"
#include "serve/delta.hpp"
#include "serve/passes.hpp"
#include "serve/plan.hpp"
#include "sparse/qcsr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"
#include "train/checkpoint.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

models::MlpConfig small_cfg(bool batch_norm = false) {
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {24, 16};
  cfg.out_features = 5;
  cfg.batch_norm = batch_norm;
  return cfg;
}

/// Sparse MLP warmed up through a few training batches, then in eval —
/// the serve_test harness, rebuilt here for the quantized pipelines.
struct QuantHarness {
  explicit QuantHarness(double sparsity, bool batch_norm = false,
                        std::uint64_t seed = 3)
      : rng(seed),
        model(small_cfg(batch_norm), rng),
        smodel(model, sparsity, sparse::DistributionKind::kErk, rng) {
    for (int i = 0; i < 3; ++i) {
      model.forward(random_tensor(tensor::Shape({8, 12}), 700 + i));
    }
    model.set_training(false);
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
};

constexpr const char* kQuantSpec =
    "elide-dropout,fold-bn,fuse-epilogue,quantize:int8,free-after-last-use";

serve::Compiler quant_compiler() {
  serve::Compiler compiler;
  compiler.pipeline_from_spec(kQuantSpec);
  return compiler;
}

/// Per-sample argmax over [batch, classes] logits.
std::vector<std::size_t> top1(const tensor::Tensor& logits) {
  const std::size_t batch = logits.shape().dim(0);
  const std::size_t classes = logits.numel() / batch;
  std::vector<std::size_t> out(batch, 0);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 1; c < classes; ++c) {
      if (logits[n * classes + c] > logits[n * classes + out[n]]) out[n] = c;
    }
  }
  return out;
}

/// Weight bytes of a plan under the ORIGINAL fp32 layout this PR retired:
/// fp32 values + size_t column indices. The "halves or better" acceptance
/// bar is measured against this, since the PR ships both the index
/// narrowing and the int8 values.
std::size_t legacy_weight_bytes(const serve::Plan& plan) {
  std::unordered_set<const void*> seen;
  std::size_t bytes = 0;
  for (const serve::PlanOp& op : plan.ops) {
    if (op.csr != nullptr && seen.insert(op.csr.get()).second) {
      bytes += op.csr->nnz() * (sizeof(float) + sizeof(std::size_t)) +
               op.csr->row_ptr().size() * sizeof(std::size_t);
    }
  }
  return bytes;
}

TEST(QuantizeWeights, HalvesWeightBytesReportedByAnnotate) {
  // Serving-sized layers, not the 12-wide toy: the halving claim is about
  // per-nonzero payload (5 bytes int8+uint32 vs the retired 12-byte
  // fp32+size_t), so row_ptr/scale overhead must not dominate nnz.
  models::MlpConfig cfg;
  cfg.in_features = 64;
  cfg.hidden = {128};
  cfg.out_features = 32;
  util::Rng rng(7);
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.5, sparse::DistributionKind::kErk,
                             rng);
  model.set_training(false);

  serve::Compiler plain;
  const serve::Plan fp32_plan = plain.plan(model, &smodel);
  const serve::Plan q_plan = quant_compiler().plan(model, &smodel);
  ASSERT_EQ(q_plan.quantized_ops, 2u);  // both Linear layers

  // Halved (or better) against the fp32+size_t layout the serving stack
  // used before this change, and strictly smaller than the current
  // fp32+uint32 layout too.
  EXPECT_LE(2 * q_plan.total_weight_bytes(),
            legacy_weight_bytes(fp32_plan));
  EXPECT_LT(q_plan.total_weight_bytes(), fp32_plan.total_weight_bytes());

  // annotate() tells the same story node by node: every quantized CSR
  // node streams fewer bytes than its fp32 twin, and the totals match
  // total_weight_bytes() (no node double-counted, none dropped).
  const tensor::Shape sample({64});
  const auto fp32_costs = fp32_plan.annotate(sample);
  const auto q_costs = q_plan.annotate(sample);
  std::size_t fp32_total = 0, q_total = 0;
  for (const auto& c : fp32_costs) fp32_total += c.weight_bytes;
  for (const auto& c : q_costs) q_total += c.weight_bytes;
  EXPECT_EQ(fp32_total, fp32_plan.total_weight_bytes());
  EXPECT_EQ(q_total, q_plan.total_weight_bytes());
  EXPECT_LT(q_total, fp32_total);

  // The bound nets report the same counters the plans do.
  serve::Plan bound = q_plan;
  const auto net = quant_compiler().bind(std::move(bound));
  EXPECT_EQ(net.num_quantized_ops(), 2u);
  EXPECT_EQ(net.total_weight_bytes(), q_plan.total_weight_bytes());
}

TEST(QuantizeWeights, MlpTop1MatchesFp32ThroughCheckpoint) {
  QuantHarness h(0.9, /*batch_norm=*/true);
  const std::string path = "serve_ckpt/quantize_mlp_roundtrip.bin";
  train::save_checkpoint(path, h.model, &h.smodel);

  QuantHarness loaded(0.9, /*batch_norm=*/true, /*seed=*/77);
  train::load_checkpoint(path, loaded.model, &loaded.smodel);
  const auto fp32 = serve::CompiledNet::compile(loaded.model, &loaded.smodel);
  const auto q = quant_compiler().compile(loaded.model, &loaded.smodel);
  ASSERT_GT(q.num_quantized_ops(), 0u);
  EXPECT_EQ(q.total_nnz(), fp32.total_nnz());  // pattern is untouched

  const auto x = random_tensor(tensor::Shape({16, 12}), 701);
  EXPECT_EQ(top1(q.forward(x)), top1(fp32.forward(x)));
}

TEST(QuantizeWeights, ResNet18Top1MatchesFp32ThroughCheckpoint) {
  const std::string path = "serve_ckpt/quantize_resnet_roundtrip.bin";
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;

  util::Rng rng(702);
  models::ResNet resnet(cfg, rng);
  sparse::SparseModel smodel(resnet, 0.85, sparse::DistributionKind::kErk,
                             rng);
  resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 703));
  resnet.set_training(false);
  train::save_checkpoint(path, resnet, &smodel);

  util::Rng rng2(704);
  models::ResNet loaded(cfg, rng2);
  sparse::SparseModel loaded_state(loaded, 0.85,
                                   sparse::DistributionKind::kErk, rng2);
  train::load_checkpoint(path, loaded, &loaded_state);
  loaded.set_training(false);

  const auto fp32 = serve::CompiledNet::compile(loaded, &loaded_state);
  const auto q = quant_compiler().compile(loaded, &loaded_state);
  ASSERT_GT(q.num_quantized_ops(), 0u);
  EXPECT_LT(q.total_weight_bytes(), fp32.total_weight_bytes());

  const auto x = random_tensor(tensor::Shape({4, 3, 8, 8}), 705);
  EXPECT_EQ(top1(q.forward(x)), top1(fp32.forward(x)));
}

TEST(QuantizeWeights, ComposesWithFusionAndPartitioningEitherOrder) {
  QuantHarness h(0.9, /*batch_norm=*/true);
  serve::CompileOptions opts;
  opts.sample_shape = tensor::Shape({12});

  // Quantize BEFORE the split: PartitionRows must slice QCsr nodes.
  serve::Compiler before(opts);
  before.pipeline_from_spec(
      "elide-dropout,fold-bn,fuse-epilogue,quantize:int8,"
      "partition-rows:2:0,free-after-last-use");
  const serve::Plan before_plan = before.plan(h.model, &h.smodel);
  EXPECT_GT(before_plan.quantized_ops, 0u);
  EXPECT_GT(before_plan.fused_ops, 0u);
  EXPECT_GT(before_plan.partitioned_ops, 0u);
  // Every partition slice shares ONE quantized parent — no per-slice
  // requantization blowing up weight bytes.
  std::unordered_set<const void*> parents;
  std::size_t slices = 0;
  for (const serve::PlanOp& op : before_plan.ops) {
    if (op.kind != serve::PlanOpKind::kRowSlice) continue;
    ASSERT_NE(op.qcsr, nullptr);
    EXPECT_EQ(op.csr, nullptr);
    parents.insert(op.qcsr.get());
    ++slices;
  }
  EXPECT_GT(slices, parents.size());

  // Quantize AFTER the split: the memoized quantizer rebuilds the same
  // shared parents, so both orders serve bit-identical programs.
  serve::Compiler after(opts);
  after.pipeline_from_spec(
      "elide-dropout,fold-bn,fuse-epilogue,partition-rows:2:0,"
      "quantize:int8,free-after-last-use");
  const serve::Plan after_plan = after.plan(h.model, &h.smodel);
  // Quantizing after the split rewrites each slice node (they still share
  // one memoized parent matrix), so the NODE counter is larger even
  // though the weight bytes are identical.
  EXPECT_GT(after_plan.quantized_ops, 0u);
  EXPECT_EQ(after_plan.total_weight_bytes(),
            before_plan.total_weight_bytes());

  serve::Plan b = before_plan, a = after_plan;
  const auto net_before = before.bind(std::move(b));
  const auto net_after = after.bind(std::move(a));
  const auto plain_q = quant_compiler().compile(h.model, &h.smodel);
  const auto fp32 = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({6, 12}), 711);
  const auto expected = plain_q.forward(x);
  // Row slicing preserves every per-row reduction order, so partitioned
  // quantized serving matches the unpartitioned quantized net exactly.
  EXPECT_TRUE(net_before.forward(x).equals(expected));
  EXPECT_TRUE(net_after.forward(x).equals(expected));
  EXPECT_EQ(top1(expected), top1(fp32.forward(x)));
}

/// One DST step on a single layer (mirrors serve_test's perturb_layer):
/// drop one active weight, grow one inactive, nudge three others.
void perturb_layer(sparse::SparseModel& state, std::size_t layer_idx) {
  sparse::MaskedParameter& layer = state.layer(layer_idx);
  const std::vector<std::size_t> active = layer.mask().active_indices();
  const std::vector<std::size_t> inactive = layer.mask().inactive_indices();
  ASSERT_GE(active.size(), 4u);
  ASSERT_GE(inactive.size(), 1u);
  layer.mask().deactivate(active[0]);
  layer.mask().activate(inactive[0]);
  layer.param().value[inactive[0]] = 0.125f;
  for (std::size_t k = 1; k < 4; ++k) {
    layer.param().value[active[k]] += 0.25f * static_cast<float>(k);
  }
  layer.apply_mask_to_value();
}

TEST(QuantizeWeights, PostQuantizeDeltaPatchMatchesFullRecompile) {
  QuantHarness base(0.9, false, 17);
  auto compiler = quant_compiler();
  serve::Plan base_plan = compiler.plan(base.model, &base.smodel);
  ASSERT_GT(base_plan.quantized_ops, 0u);

  QuantHarness next(0.9, false, 17);
  perturb_layer(next.smodel, 1);
  const serve::CheckpointDelta delta =
      serve::make_delta(base.model, &base.smodel, next.model, &next.smodel);
  serve::apply_delta(delta, base.model, &base.smodel);
  const serve::PlanPatch patch = serve::apply_delta_to_plan(
      base_plan, delta, base.model, &base.smodel);
  EXPECT_FALSE(patch.needs_full_recompile);
  EXPECT_EQ(patch.patched_weight_nodes, 1u);
  // A quantized node stays quantized across a patch: the rebuilt fp32
  // weights are re-quantized in place of swapping in raw CSR.
  EXPECT_EQ(patch.plan.quantized_ops, base_plan.quantized_ops);
  for (const serve::PlanOp& op : patch.plan.ops) {
    if (op.kind == serve::PlanOpKind::kSpmm) {
      EXPECT_NE(op.qcsr, nullptr);
    }
  }

  serve::Plan patched_plan = patch.plan;
  const auto patched_net = compiler.bind(std::move(patched_plan));
  const auto full_net = compiler.compile(base.model, &base.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 712);
  // Patch ≡ full requantized recompile, bit for bit.
  EXPECT_TRUE(patched_net.forward(x).equals(full_net.forward(x)));
}

}  // namespace
}  // namespace dstee
