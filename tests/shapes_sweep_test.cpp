// Parameterized geometry sweeps: layer output-shape contracts across a
// grid of configurations (the compile-time of a CNN stack is a run-time
// property here, so these sweeps guard every geometry branch).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

// ---- conv geometry grid ------------------------------------------------------

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, padding, in_hw;
};

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, OutputShapeMatchesFormulaAndBackwardRoundTrips) {
  const ConvCase c = GetParam();
  util::Rng rng(1);
  nn::Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.padding, rng);
  const auto x =
      random_tensor(tensor::Shape({2, c.in_ch, c.in_hw, c.in_hw}), 2);
  const auto y = conv.forward(x);
  const std::size_t expect_hw =
      (c.in_hw + 2 * c.padding - c.kernel) / c.stride + 1;
  EXPECT_EQ(y.shape(), tensor::Shape({2, c.out_ch, expect_hw, expect_hw}));
  const auto gx = conv.backward(random_tensor(y.shape(), 3));
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_FALSE(tensor::has_nonfinite(gx));
  // Weight gradient is populated everywhere (dense — DST's requirement).
  double grad_mass = 0.0;
  for (std::size_t i = 0; i < conv.weight().grad.numel(); ++i) {
    grad_mass += std::fabs(conv.weight().grad[i]);
  }
  EXPECT_GT(grad_mass, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4},   // pointwise
                      ConvCase{3, 8, 3, 1, 1, 8},   // same-pad 3x3
                      ConvCase{4, 4, 3, 2, 1, 9},   // strided odd input
                      ConvCase{2, 6, 5, 1, 2, 7},   // 5x5 same-pad
                      ConvCase{8, 4, 1, 2, 0, 6},   // strided pointwise
                      ConvCase{2, 2, 3, 1, 0, 5},   // valid conv
                      ConvCase{1, 16, 7, 2, 3, 16}, // stem-like 7x7/2
                      ConvCase{5, 3, 2, 2, 0, 8})); // even kernel

// ---- pooling geometry --------------------------------------------------------

struct PoolCase {
  std::size_t kernel, stride, in_hw;
};

class PoolGeometry : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolGeometry, MaxPoolShapeAndGradientMass) {
  const PoolCase c = GetParam();
  nn::MaxPool2d pool(c.kernel, c.stride);
  const auto x = random_tensor(tensor::Shape({2, 3, c.in_hw, c.in_hw}), 5);
  const auto y = pool.forward(x);
  const std::size_t expect = (c.in_hw - c.kernel) / c.stride + 1;
  EXPECT_EQ(y.shape(), tensor::Shape({2, 3, expect, expect}));
  // Backward routes exactly one gradient unit per output element.
  tensor::Tensor ones(y.shape());
  ones.fill(1.0f);
  const auto gx = pool.backward(ones);
  EXPECT_NEAR(tensor::sum(gx), static_cast<double>(y.numel()), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Grid, PoolGeometry,
                         ::testing::Values(PoolCase{2, 2, 8}, PoolCase{2, 2, 9},
                                           PoolCase{3, 3, 9}, PoolCase{3, 2, 7},
                                           PoolCase{2, 1, 5},
                                           PoolCase{4, 4, 16}));

// ---- linear size grid --------------------------------------------------------

class LinearSizes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LinearSizes, ForwardBackwardShapes) {
  const auto [in, out] = GetParam();
  util::Rng rng(7);
  nn::Linear layer(in, out, rng);
  const auto x = random_tensor(tensor::Shape({3, in}), 8);
  const auto y = layer.forward(x);
  EXPECT_EQ(y.shape(), tensor::Shape({3, out}));
  EXPECT_EQ(layer.backward(random_tensor(y.shape(), 9)).shape(), x.shape());
  EXPECT_EQ(layer.weight().value.shape(), tensor::Shape({out, in}));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LinearSizes,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 64),
                       ::testing::Values<std::size_t>(1, 5, 33)));

// ---- batchnorm channel grid --------------------------------------------------

class BatchNormChannels : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchNormChannels, TrainAndEvalShapesAgree) {
  const std::size_t channels = GetParam();
  nn::BatchNorm2d bn(channels);
  const auto x = random_tensor(tensor::Shape({4, channels, 3, 3}), 10);
  bn.set_training(true);
  EXPECT_EQ(bn.forward(x).shape(), x.shape());
  EXPECT_EQ(bn.backward(random_tensor(x.shape(), 11)).shape(), x.shape());
  bn.set_training(false);
  EXPECT_EQ(bn.forward(x).shape(), x.shape());
  // Eval backward (SynFlow path) works too.
  EXPECT_EQ(bn.backward(random_tensor(x.shape(), 12)).shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(Grid, BatchNormChannels,
                         ::testing::Values<std::size_t>(1, 2, 5, 16, 64));

// ---- input-too-small failure grid ---------------------------------------------

TEST(GeometryErrors, ConvRejectsInputSmallerThanKernel) {
  util::Rng rng(13);
  nn::Conv2d conv(1, 1, 5, 1, 0, rng);
  EXPECT_THROW(conv.forward(random_tensor(tensor::Shape({1, 1, 3, 3}), 14)),
               util::CheckError);
}

TEST(GeometryErrors, PoolRejectsInputSmallerThanWindow) {
  nn::MaxPool2d pool(4);
  EXPECT_THROW(pool.forward(random_tensor(tensor::Shape({1, 1, 3, 3}), 15)),
               util::CheckError);
}

}  // namespace
}  // namespace dstee
