// Unit tests for top-k / bottom-k selection (the drop-and-grow primitive).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "tensor/topk.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

tensor::Tensor vec(std::initializer_list<float> v) {
  return tensor::Tensor(tensor::Shape({v.size()}), std::vector<float>(v));
}

TEST(TopK, SelectsLargest) {
  const auto t = vec({3, 1, 4, 1, 5, 9, 2, 6});
  const auto idx = tensor::topk_indices(t, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 5u);  // 9
  EXPECT_EQ(idx[1], 7u);  // 6
  EXPECT_EQ(idx[2], 4u);  // 5
}

TEST(TopK, BottomSelectsSmallest) {
  const auto t = vec({3, 1, 4, 1, 5});
  const auto idx = tensor::bottomk_indices(t, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);  // first 1
  EXPECT_EQ(idx[1], 3u);  // second 1
}

TEST(TopK, TieBreaksByIndexDeterministically) {
  const auto t = vec({2, 2, 2, 2});
  const auto idx = tensor::topk_indices(t, 2);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
}

TEST(TopK, KZeroReturnsEmpty) {
  EXPECT_TRUE(tensor::topk_indices(vec({1, 2}), 0).empty());
}

TEST(TopK, KEqualsNReturnsAll) {
  const auto idx = tensor::topk_indices(vec({1, 2, 3}), 3);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(TopK, KTooLargeThrows) {
  EXPECT_THROW(tensor::topk_indices(vec({1, 2}), 3), util::CheckError);
}

TEST(TopK, MatchesFullSortOnRandomData) {
  const auto t = testing::random_tensor(tensor::Shape({500}), 11);
  const std::size_t k = 37;
  const auto idx = tensor::topk_indices(t, k);
  // Reference: full sort.
  std::vector<std::size_t> all(t.numel());
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::sort(all.begin(), all.end(), [&](std::size_t a, std::size_t b) {
    if (t[a] != t[b]) return t[a] > t[b];
    return a < b;
  });
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(idx[i], all[i]);
}

TEST(TopK, WhereRestrictsToEligible) {
  const auto t = vec({10, 9, 8, 7});
  const auto mask = vec({0, 1, 0, 1});
  const auto idx = tensor::topk_indices_where(t, mask, 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
}

TEST(TopK, BottomWhereRestrictsToEligible) {
  const auto t = vec({1, 2, 3, 4});
  const auto mask = vec({0, 1, 1, 0});
  const auto idx = tensor::bottomk_indices_where(t, mask, 1);
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0], 1u);
}

TEST(TopK, WhereThrowsWhenNotEnoughEligible) {
  const auto t = vec({1, 2, 3});
  const auto mask = vec({1, 0, 0});
  EXPECT_THROW(tensor::topk_indices_where(t, mask, 2), util::CheckError);
}

TEST(TopK, WhereShapeMismatchThrows) {
  EXPECT_THROW(tensor::topk_indices_where(vec({1, 2}), vec({1}), 1),
               util::CheckError);
}

TEST(TopK, NegativeValuesHandled) {
  const auto t = vec({-5, -1, -3});
  const auto top = tensor::topk_indices(t, 1);
  EXPECT_EQ(top[0], 1u);
  const auto bottom = tensor::bottomk_indices(t, 1);
  EXPECT_EQ(bottom[0], 0u);
}

}  // namespace
}  // namespace dstee
