// Graph substrate tests: CSR, generator, propagation, link splits.
#include <gtest/gtest.h>

#include <set>

#include "graph/generator.hpp"
#include "graph/graph.hpp"
#include "graph/link_prediction.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

TEST(Graph, BuildsCsrFromEdges) {
  const graph::Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DropsDuplicatesAndSelfLoops) {
  const graph::Graph g(3, {{0, 1}, {1, 0}, {0, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, EdgeListCanonical) {
  const graph::Graph g(4, {{2, 0}, {3, 1}});
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, RejectsOutOfRangeEdges) {
  EXPECT_THROW(graph::Graph(2, {{0, 5}}), util::CheckError);
  EXPECT_THROW(graph::Graph(0, {}), util::CheckError);
}

TEST(Graph, PropagateShapeAndSymmetry) {
  const graph::Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto x = testing::random_tensor(tensor::Shape({5, 3}), 1);
  const auto y = testing::random_tensor(tensor::Shape({5, 3}), 2);
  const auto ax = g.propagate(x);
  const auto ay = g.propagate(y);
  EXPECT_EQ(ax.shape(), x.shape());
  // Â symmetric ⇒ <Âx, y> == <x, Ây>.
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    lhs += static_cast<double>(ax[i]) * y[i];
    rhs += static_cast<double>(x[i]) * ay[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Graph, PropagatePreservesConstantVector) {
  // Â = D̃^{-1/2}(A+I)D̃^{-1/2} applied to a constant vector on a regular
  // graph returns the same constant (row sums = 1 when degrees equal).
  const graph::Graph ring(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  tensor::Tensor ones({4, 1});
  ones.fill(1.0f);
  const auto out = ring.propagate(ones);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(out[i], 1.0f, 1e-5f);
}

TEST(Generator, PowerLawBasicProperties) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 300;
  cfg.edges_per_node = 3;
  const auto g = graph::generate_power_law(cfg);
  EXPECT_EQ(g.num_nodes(), 300u);
  // m edges per new node + seed clique.
  EXPECT_GE(g.num_edges(), (300u - 4u) * 3u);
  // Every node has degree >= m (new nodes attach m edges; seeds more).
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(g.degree(u), 1u);
  }
}

TEST(Generator, PowerLawHasHubs) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 500;
  cfg.edges_per_node = 2;
  const auto g = graph::generate_power_law(cfg);
  std::size_t max_degree = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.degree(u));
  }
  // Preferential attachment produces hubs far above the mean degree (≈4).
  EXPECT_GT(max_degree, 20u);
}

TEST(Generator, DeterministicBySeed) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 100;
  cfg.edges_per_node = 2;
  cfg.seed = 77;
  const auto a = graph::generate_power_law(cfg);
  const auto b = graph::generate_power_law(cfg);
  EXPECT_EQ(a.edge_list().size(), b.edge_list().size());
  const auto ea = a.edge_list(), eb = b.edge_list();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_TRUE(ea[i] == eb[i]);
  }
}

TEST(Generator, PresetsScaleAsDocumented) {
  const auto ia = graph::ia_email_config(1.0);
  EXPECT_EQ(ia.num_nodes, 1133u);
  EXPECT_EQ(ia.edges_per_node, 5u);
  const auto wiki = graph::wiki_talk_config(0.5);
  EXPECT_EQ(wiki.num_nodes, 1200u);
  EXPECT_EQ(wiki.edges_per_node, 2u);
  // Tiny scales clamp at the floor.
  EXPECT_EQ(graph::ia_email_config(0.0).num_nodes, 64u);
}

TEST(Generator, StructuralFeaturesShapeAndDeterminism) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 50;
  cfg.edges_per_node = 2;
  const auto g = graph::generate_power_law(cfg);
  const auto f1 = graph::structural_features(g, 16, 5);
  const auto f2 = graph::structural_features(g, 16, 5);
  EXPECT_EQ(f1.shape(), tensor::Shape({50, 16}));
  EXPECT_TRUE(f1.equals(f2));
  const auto f3 = graph::structural_features(g, 16, 6);
  EXPECT_FALSE(f1.equals(f3));
}

TEST(LinkSplit, PartitionsEdges) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 200;
  cfg.edges_per_node = 3;
  const auto g = graph::generate_power_law(cfg);
  const auto split = graph::split_links(g, 0.2, 11);
  const std::size_t test_pos = split.test_pairs.size() / 2;
  EXPECT_EQ(split.train_edges.size() + test_pos, g.num_edges());
  // train pairs: half positive, half negative
  std::size_t pos = 0;
  for (const auto& p : split.train_pairs) {
    if (p.label == 1.0f) ++pos;
  }
  EXPECT_EQ(pos, split.train_edges.size());
}

TEST(LinkSplit, NegativesAreNonEdges) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 150;
  cfg.edges_per_node = 2;
  const auto g = graph::generate_power_law(cfg);
  const auto split = graph::split_links(g, 0.3, 13);
  for (const auto& p : split.test_pairs) {
    if (p.label == 0.0f) {
      EXPECT_FALSE(g.has_edge(p.u, p.v));
    } else {
      EXPECT_TRUE(g.has_edge(p.u, p.v));
    }
  }
}

TEST(LinkSplit, HeldOutEdgesNotInTrainingSet) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 100;
  cfg.edges_per_node = 2;
  const auto g = graph::generate_power_law(cfg);
  const auto split = graph::split_links(g, 0.25, 17);
  std::set<std::pair<std::size_t, std::size_t>> train_set;
  for (const auto& e : split.train_edges) train_set.insert({e.u, e.v});
  for (const auto& p : split.test_pairs) {
    if (p.label == 1.0f) {
      EXPECT_EQ(train_set.count({p.u, p.v}), 0u);
    }
  }
}

TEST(LinkSplit, InvalidHoldoutThrows) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 64;
  const auto g = graph::generate_power_law(cfg);
  EXPECT_THROW(graph::split_links(g, 0.0, 1), util::CheckError);
  EXPECT_THROW(graph::split_links(g, 1.0, 1), util::CheckError);
}

TEST(NegativeSampling, ProducesRequestedCount) {
  graph::PowerLawConfig cfg;
  cfg.num_nodes = 120;
  cfg.edges_per_node = 2;
  const auto g = graph::generate_power_law(cfg);
  util::Rng rng(19);
  const auto negatives = graph::sample_negative_edges(g, 50, rng);
  EXPECT_EQ(negatives.size(), 50u);
  for (const auto& e : negatives) {
    EXPECT_FALSE(g.has_edge(e.u, e.v));
    EXPECT_NE(e.u, e.v);
  }
}

}  // namespace
}  // namespace dstee
