// Trainer, metrics and experiment-harness tests.
#include <gtest/gtest.h>

#include "data/dataloader.hpp"
#include "data/synthetic_tabular.hpp"
#include "graph/generator.hpp"
#include "models/mlp.hpp"
#include "train/experiment.hpp"
#include "train/metrics.hpp"
#include "train/trainer.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

TEST(Metrics, AccuracyCountsArgmaxMatches) {
  tensor::Tensor logits(tensor::Shape({3, 2}), {2, 1, 0, 3, 5, 4});
  const std::vector<std::size_t> labels{0, 1, 1};
  EXPECT_NEAR(train::accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, BinaryAccuracyThresholdsAtZeroLogit) {
  tensor::Tensor logits(tensor::Shape({4}), {1.0f, -1.0f, 2.0f, -2.0f});
  const std::vector<float> targets{1, 0, 0, 0};
  EXPECT_NEAR(train::binary_accuracy(logits, targets), 0.75, 1e-9);
}

TEST(Metrics, AucPerfectSeparation) {
  tensor::Tensor scores(tensor::Shape({4}), {0.9f, 0.8f, 0.2f, 0.1f});
  const std::vector<float> targets{1, 1, 0, 0};
  EXPECT_NEAR(train::auc(scores, targets), 1.0, 1e-9);
}

TEST(Metrics, AucRandomScoresNearHalf) {
  util::Rng rng(3);
  tensor::Tensor scores({2000});
  std::vector<float> targets(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    scores[i] = static_cast<float>(rng.uniform());
    targets[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  EXPECT_NEAR(train::auc(scores, targets), 0.5, 0.05);
}

TEST(Metrics, AucHandlesTies) {
  tensor::Tensor scores(tensor::Shape({4}), {0.5f, 0.5f, 0.5f, 0.5f});
  const std::vector<float> targets{1, 0, 1, 0};
  EXPECT_NEAR(train::auc(scores, targets), 0.5, 1e-9);
}

TEST(Metrics, AucRequiresBothClasses) {
  tensor::Tensor scores(tensor::Shape({2}), {0.1f, 0.2f});
  const std::vector<float> targets{1, 1};
  EXPECT_THROW(train::auc(scores, targets), util::CheckError);
}

TEST(Metrics, MeanStdWelford) {
  train::MeanStd ms;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) ms.add(v);
  EXPECT_NEAR(ms.mean(), 5.0, 1e-12);
  EXPECT_NEAR(ms.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(ms.count(), 8u);
  train::MeanStd one;
  one.add(3.0);
  EXPECT_DOUBLE_EQ(one.stddev(), 0.0);
}

data::SyntheticTabularConfig easy_tabular() {
  data::SyntheticTabularConfig cfg;
  cfg.num_classes = 4;
  cfg.features = 16;
  cfg.train_per_class = 32;
  cfg.test_per_class = 16;
  cfg.class_separation = 3.0;
  cfg.noise = 0.7;
  cfg.seed = 9;
  return cfg;
}

TEST(Trainer, LossDecreasesAndAccuracyBeatsChance) {
  const data::SyntheticTabularDataset train_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTrain);
  const data::SyntheticTabularDataset test_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTest);
  util::Rng rng(1);
  models::MlpConfig mcfg;
  mcfg.in_features = 16;
  mcfg.hidden = {32};
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);
  optim::Sgd::Config scfg;
  scfg.lr = 0.1;
  optim::Sgd opt(model.parameters(), scfg);
  data::DataLoader loader(train_set, 32, rng.fork("loader"));
  optim::CosineAnnealingLr sched(0.1, 8 * loader.batches_per_epoch());
  train::Trainer trainer(model, opt, sched, loader, test_set, 8);
  const auto history = trainer.run();
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  EXPECT_GT(history.back().test_accuracy, 0.5);  // chance = 0.25
  EXPECT_EQ(trainer.iteration(), trainer.total_iterations());
}

TEST(Trainer, HooksFireInOrder) {
  const data::SyntheticTabularDataset train_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTrain);
  util::Rng rng(2);
  models::MlpConfig mcfg;
  mcfg.in_features = 16;
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);
  optim::Sgd::Config scfg;
  optim::Sgd opt(model.parameters(), scfg);
  data::DataLoader loader(train_set, 64, rng.fork("loader"));
  optim::ConstantLr sched(0.05);
  train::Trainer trainer(model, opt, sched, loader, train_set, 1);
  std::vector<std::string> order;
  train::TrainHooks hooks;
  hooks.after_backward = [&](std::size_t, double lr) {
    EXPECT_DOUBLE_EQ(lr, 0.05);
    order.push_back("backward");
  };
  hooks.before_step = [&] { order.push_back("before"); };
  hooks.after_step = [&] { order.push_back("after"); };
  hooks.on_epoch_end = [&](std::size_t) { order.push_back("epoch"); };
  trainer.set_hooks(hooks);
  trainer.run();
  ASSERT_GE(order.size(), 4u);
  EXPECT_EQ(order[0], "backward");
  EXPECT_EQ(order[1], "before");
  EXPECT_EQ(order[2], "after");
  EXPECT_EQ(order.back(), "epoch");
}

TEST(Experiment, ParseMethodRoundTrips) {
  using train::MethodKind;
  const std::vector<MethodKind> all{
      MethodKind::kDense, MethodKind::kSnip, MethodKind::kGrasp,
      MethodKind::kSynFlow, MethodKind::kStr, MethodKind::kSis,
      MethodKind::kDeepR, MethodKind::kSet, MethodKind::kRigl,
      MethodKind::kRiglItop, MethodKind::kMest, MethodKind::kSnfs,
      MethodKind::kDsr, MethodKind::kDstEe, MethodKind::kGap};
  for (const auto m : all) {
    EXPECT_EQ(train::parse_method(train::to_string(m)), m);
  }
  EXPECT_THROW(train::parse_method("nope"), util::CheckError);
}

TEST(Experiment, MethodPredicatesPartition) {
  using train::MethodKind;
  for (const auto m :
       {MethodKind::kDense, MethodKind::kSnip, MethodKind::kStr,
        MethodKind::kSet, MethodKind::kDstEe}) {
    int cats = 0;
    if (train::is_dynamic(m)) ++cats;
    if (train::is_static(m)) ++cats;
    if (train::is_dense_to_sparse(m)) ++cats;
    EXPECT_LE(cats, 1);
  }
  EXPECT_TRUE(train::is_dynamic(MethodKind::kDstEe));
  EXPECT_TRUE(train::is_static(MethodKind::kSnip));
  EXPECT_TRUE(train::is_dense_to_sparse(MethodKind::kStr));
  EXPECT_FALSE(train::is_dynamic(MethodKind::kDense));
}

class ExperimentMethods : public ::testing::TestWithParam<const char*> {};

TEST_P(ExperimentMethods, RunsAndHitsTargetSparsity) {
  const auto method = train::parse_method(GetParam());
  const data::SyntheticTabularDataset train_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTrain);
  const data::SyntheticTabularDataset test_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTest);
  util::Rng rng(11);
  models::MlpConfig mcfg;
  mcfg.in_features = 16;
  mcfg.hidden = {48};
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);
  const auto fm = model.flops_model();

  train::ClassificationConfig cfg;
  cfg.method = method;
  cfg.sparsity = 0.8;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  cfg.dst.delta_t = 4;
  cfg.seed = 11;
  const auto result =
      train::run_classification(model, &fm, train_set, test_set, cfg);

  EXPECT_GT(result.final_test_accuracy, 0.3);  // chance = 0.25
  if (method != train::MethodKind::kDense) {
    EXPECT_NEAR(result.achieved_sparsity, 0.8, 0.05);
    EXPECT_LT(result.inference_flops_multiple, 0.5);
  } else {
    EXPECT_DOUBLE_EQ(result.achieved_sparsity, 0.0);
    EXPECT_DOUBLE_EQ(result.train_flops_multiple, 1.0);
  }
  if (train::is_dynamic(method)) {
    EXPECT_GT(result.topology_rounds.size(), 0u);
  }
  EXPECT_EQ(result.history.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ExperimentMethods,
    ::testing::Values("dense", "snip", "grasp", "synflow", "str", "sis",
                      "deepr", "set", "rigl", "rigl-itop", "mest", "snfs",
                      "dsr", "dst-ee", "gap"));

TEST(Experiment, DstEeExplorationExceedsStaticBound) {
  const data::SyntheticTabularDataset train_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTrain);
  const data::SyntheticTabularDataset test_set(
      easy_tabular(), data::SyntheticTabularDataset::Split::kTest);
  util::Rng rng(12);
  models::MlpConfig mcfg;
  mcfg.in_features = 16;
  mcfg.hidden = {48};
  mcfg.out_features = 4;
  models::Mlp model(mcfg, rng);

  train::ClassificationConfig cfg;
  cfg.method = train::MethodKind::kDstEe;
  cfg.sparsity = 0.9;
  cfg.epochs = 6;
  cfg.dst.delta_t = 2;
  cfg.dst.c = 1e-2;
  const auto result =
      train::run_classification(model, nullptr, train_set, test_set, cfg);
  // DST must have explored beyond its initial 10% of weights.
  EXPECT_GT(result.exploration_rate, 0.1 + 0.02);
}

TEST(Experiment, LinkPredictionAllMethodsRun) {
  const auto g = graph::generate_power_law(graph::ia_email_config(0.1, 3));
  const auto features = graph::structural_features(g, 16, 3);
  const auto split = graph::split_links(g, 0.2, 3);

  for (const auto method :
       {train::LinkMethod::kDense, train::LinkMethod::kPruneFromDense,
        train::LinkMethod::kDstEe}) {
    util::Rng rng(13);
    models::GnnConfig gcfg;
    gcfg.in_features = 16;
    gcfg.hidden = 32;
    gcfg.embedding = 16;
    models::GnnLinkPredictor model(g, gcfg, rng);
    train::LinkConfig cfg;
    cfg.method = method;
    cfg.sparsity = 0.8;
    cfg.epochs = 40;
    cfg.admm_epochs_each = 15;
    cfg.dst.delta_t = 2;
    const auto result =
        train::run_link_prediction(model, features, split, cfg);
    EXPECT_GT(result.best_test_accuracy, 0.52);  // better than coin flip
    EXPECT_GT(result.best_test_auc, 0.6);
    if (method != train::LinkMethod::kDense) {
      EXPECT_NEAR(result.achieved_sparsity, 0.8, 0.05);
    }
  }
}

}  // namespace
}  // namespace dstee
