// Public-API (core::DstEeSession) tests — Algorithm 1 end to end.
#include <gtest/gtest.h>

#include "core/dst_ee.hpp"

#include "tensor/ops.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic_tabular.hpp"
#include "models/mlp.hpp"
#include "nn/losses.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "sparse/stats.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

struct SessionHarness {
  explicit SessionHarness(double sparsity = 0.9, double c = 1e-3)
      : rng(21),
        train_set(tab_cfg(), data::SyntheticTabularDataset::Split::kTrain),
        test_set(tab_cfg(), data::SyntheticTabularDataset::Split::kTest),
        model(mlp_cfg(), rng),
        optimizer(model.parameters(), sgd_cfg()),
        loader(train_set, 32, rng.fork("loader")) {
    core::DstEeConfig ee;
    ee.sparsity = sparsity;
    ee.delta_t = 3;
    ee.c = c;
    total_iters = 6 * loader.batches_per_epoch();
    session = std::make_unique<core::DstEeSession>(model, optimizer, ee,
                                                   total_iters, 21);
  }

  static data::SyntheticTabularConfig tab_cfg() {
    data::SyntheticTabularConfig cfg;
    cfg.num_classes = 4;
    cfg.features = 16;
    cfg.train_per_class = 32;
    cfg.test_per_class = 8;
    cfg.class_separation = 3.0;
    cfg.seed = 21;
    return cfg;
  }
  static models::MlpConfig mlp_cfg() {
    models::MlpConfig cfg;
    cfg.in_features = 16;
    cfg.hidden = {64};
    cfg.out_features = 4;
    return cfg;
  }
  static optim::Sgd::Config sgd_cfg() {
    optim::Sgd::Config cfg;
    cfg.lr = 0.1;
    cfg.momentum = 0.9;
    return cfg;
  }

  // Trains for `epochs` epochs through the session API; returns final
  // train loss.
  double train_epochs(std::size_t epochs) {
    nn::SoftmaxCrossEntropy loss;
    optim::CosineAnnealingLr sched(0.1, total_iters);
    double last = 0.0;
    std::size_t iter = 0;
    for (std::size_t e = 0; e < epochs; ++e) {
      loader.start_epoch();
      while (loader.has_next()) {
        const auto batch = loader.next_batch();
        model.zero_grad();
        last = loss.forward(model.forward(batch.examples), batch.labels);
        model.backward(loss.backward());
        const double lr = sched.lr_at(iter);
        session->on_iteration_end(iter, lr);
        optimizer.set_learning_rate(lr);
        optimizer.step();
        session->after_optimizer_step();
        ++iter;
      }
    }
    return last;
  }

  util::Rng rng;
  data::SyntheticTabularDataset train_set;
  data::SyntheticTabularDataset test_set;
  models::Mlp model;
  optim::Sgd optimizer;
  data::DataLoader loader;
  std::unique_ptr<core::DstEeSession> session;
  std::size_t total_iters = 0;
};

TEST(DstEeSession, SparsifiesAtConstruction) {
  SessionHarness h(0.9);
  EXPECT_NEAR(h.session->sparsity(), 0.9, 0.01);
  EXPECT_EQ(sparse::validate_invariants(h.session->sparse_model()), "");
}

TEST(DstEeSession, SparsityInvariantHoldsThroughTraining) {
  SessionHarness h(0.9);
  h.train_epochs(3);
  EXPECT_NEAR(h.session->sparsity(), 0.9, 0.01);
  EXPECT_EQ(sparse::validate_invariants(h.session->sparse_model()), "");
}

TEST(DstEeSession, LearnsAboveChance) {
  SessionHarness h(0.8);
  const double first_loss = h.train_epochs(1);
  const double last_loss = h.train_epochs(5);
  EXPECT_LT(last_loss, first_loss);
  // Evaluate accuracy on the test split.
  h.model.set_training(false);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < h.test_set.size(); ++i) {
    const auto logits = h.model.forward(h.test_set.batch({i}));
    if (tensor::argmax_rows(logits)[0] == h.test_set.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / h.test_set.size(), 0.5);
}

TEST(DstEeSession, ExplorationRateGrowsDuringTraining) {
  SessionHarness h(0.95, /*c=*/1e-2);
  const double r0 = h.session->exploration_rate();
  h.train_epochs(6);
  EXPECT_GT(h.session->exploration_rate(), r0);
}

TEST(DstEeSession, LargerCExploresMore) {
  // Fig. 3's mechanism at unit-test scale: larger c ⇒ higher R.
  SessionHarness small_c(0.95, 1e-5);
  SessionHarness large_c(0.95, 1e-1);
  small_c.train_epochs(6);
  large_c.train_epochs(6);
  EXPECT_GE(large_c.session->exploration_rate(),
            small_c.session->exploration_rate());
}

TEST(DstEeSession, TopologyUpdatesFollowSchedule) {
  SessionHarness h(0.9);
  h.train_epochs(2);
  const auto& log = h.session->engine().log();
  EXPECT_GT(log.num_rounds(), 0u);
  for (const auto& round : log.rounds()) {
    EXPECT_EQ(round.iteration % 3, 0u);  // delta_t = 3
    EXPECT_EQ(round.dropped, round.grown);
  }
}

TEST(DstEeSession, RejectsZeroIterations) {
  SessionHarness h(0.9);
  core::DstEeConfig ee;
  EXPECT_THROW(core::DstEeSession(h.model, h.optimizer, ee, 0, 1),
               util::CheckError);
}

TEST(DstEeSession, ConfigAccessorsRoundTrip) {
  SessionHarness h(0.9);
  EXPECT_DOUBLE_EQ(h.session->config().sparsity, 0.9);
  EXPECT_EQ(h.session->config().delta_t, 3u);
}

}  // namespace
}  // namespace dstee
