// Unit tests for im2col / col2im, including the adjoint identity.
#include <gtest/gtest.h>

#include "tensor/im2col.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

TEST(Im2col, GeometryOutputs) {
  tensor::ConvGeometry g;
  g.in_channels = 3;
  g.in_h = 8;
  g.in_w = 8;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.padding = 1;
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_size(), 27u);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 4u);
}

TEST(Im2col, IdentityKernelCopiesPixels) {
  // 1x1 kernel, no padding: im2col is the identity layout.
  tensor::ConvGeometry g;
  g.in_channels = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel_h = 1;
  g.kernel_w = 1;
  const auto img = testing::random_tensor(tensor::Shape({2, 3, 3}), 1);
  tensor::Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
  tensor::im2col(img.raw(), g, cols);
  for (std::size_t i = 0; i < img.numel(); ++i) {
    EXPECT_EQ(cols[i], img[i]);
  }
}

TEST(Im2col, KnownThreeByThreePatch) {
  // single channel 3x3 image, 3x3 kernel with padding 1 → middle column of
  // the output corresponds to the full image.
  tensor::ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.padding = 1;
  tensor::Tensor img(tensor::Shape({1, 3, 3}),
                     {1, 2, 3, 4, 5, 6, 7, 8, 9});
  tensor::Tensor cols({g.patch_size(), 9});
  tensor::im2col(img.raw(), g, cols);
  // Output position (1,1) (column index 4) sees the whole image.
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_EQ(cols.at2(k, 4), static_cast<float>(k + 1));
  }
  // Output position (0,0) (column 0): kernel rows/cols hitting the padding
  // band must be zero; e.g. patch row 0 (kh=0, kw=0) reads padding.
  EXPECT_EQ(cols.at2(0, 0), 0.0f);
  // Patch element (kh=1, kw=1) at output (0,0) reads pixel (0,0) = 1.
  EXPECT_EQ(cols.at2(4, 0), 1.0f);
}

TEST(Im2col, WrongColsShapeThrows) {
  tensor::ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 4;
  g.in_w = 4;
  g.kernel_h = 2;
  g.kernel_w = 2;
  const auto img = testing::random_tensor(tensor::Shape({1, 4, 4}), 2);
  tensor::Tensor wrong({3, 3});
  EXPECT_THROW(tensor::im2col(img.raw(), g, wrong), util::CheckError);
}

// Adjoint identity: <im2col(x), y> == <x, col2im(y)> for all x, y. This is
// the property conv backward relies on.
TEST(Im2col, Col2imIsAdjoint) {
  tensor::ConvGeometry g;
  g.in_channels = 2;
  g.in_h = 5;
  g.in_w = 6;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 2;
  g.padding = 1;
  const auto x = testing::random_tensor(tensor::Shape({2, 5, 6}), 3);
  const auto y = testing::random_tensor(
      tensor::Shape({g.patch_size(), g.out_h() * g.out_w()}), 4);

  tensor::Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
  tensor::im2col(x.raw(), g, cols);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }

  tensor::Tensor x_grad({2, 5, 6});
  tensor::col2im(y, g, x_grad.raw());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * x_grad[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Im2col, StridedNoPaddingRoundTripCounts) {
  // col2im of all-ones counts how many patches touch each pixel.
  tensor::ConvGeometry g;
  g.in_channels = 1;
  g.in_h = 4;
  g.in_w = 4;
  g.kernel_h = 2;
  g.kernel_w = 2;
  g.stride = 2;
  tensor::Tensor ones_cols({g.patch_size(), g.out_h() * g.out_w()});
  ones_cols.fill(1.0f);
  tensor::Tensor counts({1, 4, 4});
  tensor::col2im(ones_cols, g, counts.raw());
  // Non-overlapping 2x2 windows: every pixel is covered exactly once.
  for (std::size_t i = 0; i < counts.numel(); ++i) {
    EXPECT_EQ(counts[i], 1.0f);
  }
}

}  // namespace
}  // namespace dstee
