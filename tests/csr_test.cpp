// CSR sparse-inference tests: conversion round-trips, products vs dense
// reference, and the end-to-end sparse deployment of a trained MLP.
#include <gtest/gtest.h>

#include <algorithm>

#include "models/mlp.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "sparse/csr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

TEST(Csr, FromDenseRoundTrips) {
  tensor::Tensor dense(tensor::Shape({3, 4}),
                       {1, 0, 2, 0, 0, 0, 0, 3, 4, 0, 0, 5});
  const auto csr = sparse::CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.cols(), 4u);
  EXPECT_EQ(csr.nnz(), 5u);
  EXPECT_NEAR(csr.density(), 5.0 / 12.0, 1e-12);
  EXPECT_TRUE(csr.to_dense().equals(dense));
}

TEST(Csr, EpsThresholdDropsSmallEntries) {
  tensor::Tensor dense(tensor::Shape({1, 3}), {1.0f, 1e-6f, -2.0f});
  const auto csr = sparse::CsrMatrix::from_dense(dense, 1e-3f);
  EXPECT_EQ(csr.nnz(), 2u);
}

TEST(Csr, FromMaskedStoresActiveEntriesOnly) {
  util::Rng rng(1);
  models::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = {};
  cfg.out_features = 8;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.75, sparse::DistributionKind::kUniform,
                         rng);
  const auto csr = sparse::CsrMatrix::from_masked(sm.layer(0));
  EXPECT_EQ(csr.nnz(), sm.layer(0).num_active());
  // Reconstruction matches the masked dense weights exactly.
  EXPECT_TRUE(csr.to_dense().equals(sm.layer(0).param().value));
}

TEST(Csr, MatvecMatchesDense) {
  const auto dense = random_tensor(tensor::Shape({7, 5}), 2);
  const auto x = random_tensor(tensor::Shape({5}), 3);
  const auto csr = sparse::CsrMatrix::from_dense(dense);
  const auto y = csr.matvec(x);
  ASSERT_EQ(y.numel(), 7u);
  for (std::size_t r = 0; r < 7; ++r) {
    float expect = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) expect += dense[r * 5 + c] * x[c];
    EXPECT_NEAR(y[r], expect, 1e-4f);
  }
}

TEST(Csr, MatmulNtMatchesDenseKernel) {
  const auto w = random_tensor(tensor::Shape({6, 9}), 4);
  const auto x = random_tensor(tensor::Shape({4, 9}), 5);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_TRUE(csr.matmul_nt(x).allclose(tensor::matmul_nt(x, w), 1e-4f));
}

TEST(Csr, SpmmMatchesDenseMatmulOnRandomMaskedMatrices) {
  for (const double density : {0.05, 0.3, 0.7}) {
    auto w = random_tensor(tensor::Shape({13, 9}), 31);
    // Random mask at the given density.
    util::Rng mask_rng(static_cast<std::uint64_t>(density * 1000));
    for (std::size_t i = 0; i < w.numel(); ++i) {
      if (mask_rng.uniform() > density) w[i] = 0.0f;
    }
    const auto x = random_tensor(tensor::Shape({6, 9}), 33);
    const auto csr = sparse::CsrMatrix::from_dense(w);
    const auto expected = tensor::matmul_nt(x, w);
    EXPECT_TRUE(csr.spmm(x).allclose(expected, 1e-4f))
        << "density " << density;
  }
}

TEST(Csr, SpmmHandlesEmptyRowsAndFullyDense) {
  // Row 1 is entirely masked; the result row must be exactly zero.
  tensor::Tensor w(tensor::Shape({3, 4}),
                   {1, -2, 0, 3, 0, 0, 0, 0, 4, 5, 6, 7});
  const auto x = random_tensor(tensor::Shape({5, 4}), 41);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto y = csr.spmm(x);
  for (std::size_t n = 0; n < 5; ++n) EXPECT_EQ(y[n * 3 + 1], 0.0f);
  EXPECT_TRUE(y.allclose(tensor::matmul_nt(x, w), 1e-4f));

  // Fully dense matrix: CSR must agree with the dense kernel too.
  const auto d = random_tensor(tensor::Shape({7, 6}), 43);
  const auto xd = random_tensor(tensor::Shape({4, 6}), 44);
  EXPECT_EQ(sparse::CsrMatrix::from_dense(d).nnz(), 42u);
  EXPECT_TRUE(sparse::CsrMatrix::from_dense(d).spmm(xd).allclose(
      tensor::matmul_nt(xd, d), 1e-4f));
}

TEST(Csr, SpmmIsThreadCountInvariant) {
  // Row-parallel chunks write disjoint outputs, so any thread count must
  // produce bit-identical results (0 = hardware concurrency).
  const auto w = random_tensor(tensor::Shape({33, 17}), 51);
  const auto x = random_tensor(tensor::Shape({9, 17}), 52);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto serial = csr.spmm(x, 1);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{5}, std::size_t{64}}) {
    EXPECT_TRUE(csr.spmm(x, threads).equals(serial))
        << "threads=" << threads;
  }
}

TEST(Csr, SpmmShapeChecks) {
  const auto w = random_tensor(tensor::Shape({3, 4}), 61);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_THROW(csr.spmm(random_tensor(tensor::Shape({2, 5}), 62)),
               util::CheckError);
  EXPECT_THROW(csr.spmm(random_tensor(tensor::Shape({4}), 63)),
               util::CheckError);
}

TEST(Csr, ScaleRowsScalesStoredValuesOnly) {
  tensor::Tensor w(tensor::Shape({2, 3}), {1, 0, 2, 0, 3, 0});
  auto csr = sparse::CsrMatrix::from_dense(w);
  csr.scale_rows(std::vector<float>{2.0f, -1.0f});
  tensor::Tensor expected(tensor::Shape({2, 3}), {2, 0, 4, 0, -3, 0});
  EXPECT_TRUE(csr.to_dense().equals(expected));
  EXPECT_THROW(csr.scale_rows(std::vector<float>{1.0f}), util::CheckError);
}

TEST(Csr, ShapeChecks) {
  const auto w = random_tensor(tensor::Shape({3, 4}), 6);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_THROW(csr.matvec(random_tensor(tensor::Shape({5}), 7)),
               util::CheckError);
  EXPECT_THROW(csr.matmul_nt(random_tensor(tensor::Shape({2, 5}), 8)),
               util::CheckError);
  EXPECT_THROW(
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({4}), 9)),
      util::CheckError);
}

class CsrDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CsrDensitySweep, SparseForwardMatchesMaskedDenseMlp) {
  // End-to-end: sparse-train state → CSR stack → forward equals the dense
  // masked model's eval-mode forward at every density.
  const double sparsity = GetParam();
  util::Rng rng(11);
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {24, 16};
  cfg.out_features = 5;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, sparsity,
                         sparse::DistributionKind::kUniform, rng);

  std::vector<sparse::CsrMatrix> layers;
  std::vector<tensor::Tensor> biases;
  for (std::size_t i = 0; i < sm.num_layers(); ++i) {
    layers.push_back(sparse::CsrMatrix::from_masked(sm.layer(i)));
  }
  // Collect biases in the same order (linear layers only).
  for (nn::Parameter* p : model.parameters()) {
    if (!p->sparsifiable) biases.push_back(p->value);
  }
  ASSERT_EQ(biases.size(), layers.size());
  const sparse::SparseLinearStack stack(std::move(layers), std::move(biases));

  model.set_training(false);
  const auto x = random_tensor(tensor::Shape({6, 12}), 13);
  const auto dense_out = model.forward(x);
  const auto sparse_out = stack.forward(x);
  EXPECT_TRUE(sparse_out.allclose(dense_out, 1e-3f));
  EXPECT_EQ(stack.total_nnz(), sm.total_active());
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrDensitySweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.98));

TEST(Csr, FromDenseFlattensHigherRanksRowMajor) {
  // A conv weight [Cout, Cin, K, K] converts as [Cout, Cin·K·K] — the same
  // 2-d view nn::Conv2d lowers to for its matmul.
  const auto w = random_tensor(tensor::Shape({5, 3, 2, 2}), 31);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_EQ(csr.rows(), 5u);
  EXPECT_EQ(csr.cols(), 12u);
  EXPECT_TRUE(csr.to_dense().equals(w.reshaped(tensor::Shape({5, 12}))));
}

TEST(Csr, SpmmColsMatchesDenseMatmul) {
  // Y = A·B over a column-per-position patch matrix, vs the dense kernel.
  util::Rng rng(7);
  tensor::Tensor a = random_tensor(tensor::Shape({6, 9}), 41);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if ((i * 2654435761u) % 10 < 7) a[i] = 0.0f;  // ~70% sparse
  }
  const auto csr = sparse::CsrMatrix::from_dense(a);
  const auto b = random_tensor(tensor::Shape({9, 13}), 42);
  const auto expected = tensor::matmul(a, b);
  EXPECT_TRUE(csr.spmm_cols(b).allclose(expected, 1e-5f));

  // The into-variant writes the same values into caller storage.
  tensor::Tensor out({6, 13});
  csr.spmm_cols_into(b, out.raw());
  EXPECT_TRUE(out.allclose(expected, 1e-5f));
}

TEST(Csr, SpmmColsShapeChecks) {
  const auto csr =
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({3, 4}), 1));
  EXPECT_THROW(csr.spmm_cols(random_tensor(tensor::Shape({5, 2}), 2)),
               util::CheckError);
  EXPECT_THROW(csr.spmm_cols(random_tensor(tensor::Shape({4}), 3)),
               util::CheckError);
}

TEST(Csr, Im2colSpmmMatchesDenseConvReference) {
  // The serve-side conv lowering (im2col + spmm_cols with the masked
  // [Cout, Cin·K·K] matrix) must reproduce nn::Conv2d's dense forward on
  // the same masked weights, across stride/padding variants.
  struct Variant {
    std::size_t kernel, stride, padding;
  };
  for (const Variant v : {Variant{3, 1, 1}, Variant{3, 2, 0},
                          Variant{5, 2, 2}, Variant{1, 1, 0}}) {
    util::Rng rng(100 + v.kernel * 10 + v.stride);
    nn::Conv2d conv(3, 6, v.kernel, v.stride, v.padding, rng);
    // Mask ~60% of the weights to zero (stored-zero topology).
    auto& w = conv.weight().value;
    for (std::size_t i = 0; i < w.numel(); ++i) {
      if ((i * 2654435761u) % 10 < 6) w[i] = 0.0f;
    }
    conv.set_training(false);
    const auto x = random_tensor(tensor::Shape({2, 3, 9, 9}), 55);
    const auto expected = conv.forward(x);

    const auto csr = sparse::CsrMatrix::from_dense(w);
    tensor::ConvGeometry g;
    g.in_channels = 3;
    g.in_h = 9;
    g.in_w = 9;
    g.kernel_h = v.kernel;
    g.kernel_w = v.kernel;
    g.stride = v.stride;
    g.padding = v.padding;
    const std::size_t oh = g.out_h(), ow = g.out_w();
    tensor::Tensor y({2, 6, oh, ow});
    tensor::Tensor cols({g.patch_size(), oh * ow});
    for (std::size_t n = 0; n < 2; ++n) {
      tensor::im2col(x.raw() + n * 3 * 9 * 9, g, cols);
      csr.spmm_cols_into(cols, y.raw() + n * 6 * oh * ow);
    }
    EXPECT_TRUE(y.allclose(expected, 1e-4f))
        << "k" << v.kernel << " s" << v.stride << " p" << v.padding;
  }
}

// --- row_slice: the zero-copy view PartitionRows builds on -------------

TEST(Csr, RowSliceFullRangeMatchesParent) {
  const auto w = random_tensor(tensor::Shape({9, 7}), 71);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto full = csr.row_slice(0, csr.rows());
  EXPECT_EQ(full.rows(), csr.rows());
  EXPECT_EQ(full.cols(), csr.cols());
  EXPECT_EQ(full.nnz(), csr.nnz());
  EXPECT_TRUE(full.to_dense().equals(csr.to_dense()));
  const auto x = random_tensor(tensor::Shape({4, 7}), 72);
  // CsrMatrix::spmm IS the full-range slice, so bits must match exactly.
  EXPECT_TRUE(full.spmm(x).equals(csr.spmm(x)));
}

TEST(Csr, RowSliceEmptyRangeIsValid) {
  const auto w = random_tensor(tensor::Shape({5, 4}), 73);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  for (const std::size_t at : {std::size_t{0}, std::size_t{3},
                               std::size_t{5}}) {
    const auto empty = csr.row_slice(at, at);
    EXPECT_EQ(empty.rows(), 0u);
    EXPECT_EQ(empty.nnz(), 0u);
    EXPECT_EQ(empty.cols(), 4u);
    EXPECT_DOUBLE_EQ(empty.density(), 0.0);
  }
}

TEST(Csr, RowSliceOfSliceEqualsDirectSlice) {
  const auto w = random_tensor(tensor::Shape({12, 6}), 74);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto outer = csr.row_slice(2, 10);  // rows 2..10
  const auto inner = outer.row_slice(3, 7);  // rows 5..9 of the parent
  const auto direct = csr.row_slice(5, 9);
  EXPECT_EQ(inner.rows(), 4u);
  EXPECT_EQ(inner.nnz(), direct.nnz());
  EXPECT_TRUE(inner.to_dense().equals(direct.to_dense()));
}

TEST(Csr, RowSliceSpmmMatchesMaskedDenseReference) {
  // Random ~70%-masked matrix; a slice's SpMM must equal the dense kernel
  // over exactly those masked rows.
  auto w = random_tensor(tensor::Shape({13, 9}), 75);
  util::Rng mask_rng(75);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (mask_rng.uniform() > 0.3) w[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto x = random_tensor(tensor::Shape({5, 9}), 76);

  const std::size_t r0 = 3, r1 = 10;
  tensor::Tensor sub({r1 - r0, 9});
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      sub[(r - r0) * 9 + c] = w[r * 9 + c];
    }
  }
  const auto slice = csr.row_slice(r0, r1);
  EXPECT_TRUE(slice.spmm(x).allclose(tensor::matmul_nt(x, sub), 1e-5f));
  // Row-parallel chunks write disjoint outputs: any chunk count must be
  // bit-identical (0 = pool-wide).
  const auto serial = slice.spmm(x);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{5}}) {
    EXPECT_TRUE(
        slice.spmm(x, runtime::IntraOp{threads, nullptr}).equals(serial))
        << "threads=" << threads;
  }
}

TEST(Csr, RowSliceSpmmColsMatchesDenseSubmatrix) {
  auto a = random_tensor(tensor::Shape({6, 9}), 77);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if ((i * 2654435761u) % 10 < 7) a[i] = 0.0f;  // ~70% sparse
  }
  const auto csr = sparse::CsrMatrix::from_dense(a);
  const auto b = random_tensor(tensor::Shape({9, 13}), 78);
  const auto expected = tensor::matmul(a, b);

  const std::size_t r0 = 1, r1 = 5;
  tensor::Tensor out({r1 - r0, 13});
  csr.row_slice(r0, r1).spmm_cols_into(b.raw(), 13, out.raw());
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t j = 0; j < 13; ++j) {
      EXPECT_NEAR(out[(r - r0) * 13 + j], expected[r * 13 + j], 1e-5f);
    }
  }
}

TEST(Csr, RowSliceShapeChecks) {
  const auto csr =
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({4, 3}), 79));
  EXPECT_THROW(csr.row_slice(3, 2), util::CheckError);
  EXPECT_THROW(csr.row_slice(0, 5), util::CheckError);
  const auto slice = csr.row_slice(1, 3);
  EXPECT_THROW(slice.row_slice(1, 3), util::CheckError);  // past its end
  EXPECT_THROW(slice.spmm(random_tensor(tensor::Shape({2, 4}), 80)),
               util::CheckError);
}

TEST(Csr, BalancedRowSplitsEqualizeStoredWork) {
  // Rows with wildly different nnz: 0, 12, 1, 1, 12, 0, 12, 2.
  tensor::Tensor w({8, 12});
  auto fill_row = [&](std::size_t r, std::size_t count) {
    for (std::size_t c = 0; c < count; ++c) w[r * 12 + c] = 1.0f;
  };
  fill_row(1, 12);
  fill_row(2, 1);
  fill_row(3, 1);
  fill_row(4, 12);
  fill_row(6, 12);
  fill_row(7, 2);
  const auto csr = sparse::CsrMatrix::from_dense(w);

  const auto bounds = csr.balanced_row_splits(3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 8u);
  std::size_t max_nnz = 0;
  for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
    ASSERT_LT(bounds[j], bounds[j + 1]);  // every range keeps >= 1 row
    max_nnz = std::max(max_nnz,
                       csr.row_slice(bounds[j], bounds[j + 1]).nnz());
  }
  // 40 nonzeros over 3 ranges: a cost-balanced split caps the heaviest
  // range near ceil(40/3)+row granularity, far under the 25 a naive
  // equal-rows split would give ranges [0,3)/[3,6)/[6,8).
  EXPECT_LE(max_nnz, 14u);

  // Degenerate: everything in one row still yields one row per range.
  tensor::Tensor heavy({4, 8});
  for (std::size_t c = 0; c < 8; ++c) heavy[c] = 1.0f;
  const auto heavy_csr = sparse::CsrMatrix::from_dense(heavy);
  const auto hb = heavy_csr.balanced_row_splits(4);
  for (std::size_t j = 0; j + 1 < hb.size(); ++j) {
    EXPECT_EQ(hb[j + 1] - hb[j], 1u);
  }
  EXPECT_THROW(heavy_csr.balanced_row_splits(5), util::CheckError);
}

TEST(Csr, StackValidatesChaining) {
  std::vector<sparse::CsrMatrix> layers;
  layers.push_back(
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({4, 8}), 14)));
  layers.push_back(
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({3, 5}), 15)));
  std::vector<tensor::Tensor> biases(2);
  EXPECT_THROW(
      sparse::SparseLinearStack(std::move(layers), std::move(biases)),
      util::CheckError);
}

}  // namespace
}  // namespace dstee
