// CSR sparse-inference tests: conversion round-trips, products vs dense
// reference, and the end-to-end sparse deployment of a trained MLP.
#include <gtest/gtest.h>

#include "models/mlp.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "sparse/csr.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

TEST(Csr, FromDenseRoundTrips) {
  tensor::Tensor dense(tensor::Shape({3, 4}),
                       {1, 0, 2, 0, 0, 0, 0, 3, 4, 0, 0, 5});
  const auto csr = sparse::CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.cols(), 4u);
  EXPECT_EQ(csr.nnz(), 5u);
  EXPECT_NEAR(csr.density(), 5.0 / 12.0, 1e-12);
  EXPECT_TRUE(csr.to_dense().equals(dense));
}

TEST(Csr, EpsThresholdDropsSmallEntries) {
  tensor::Tensor dense(tensor::Shape({1, 3}), {1.0f, 1e-6f, -2.0f});
  const auto csr = sparse::CsrMatrix::from_dense(dense, 1e-3f);
  EXPECT_EQ(csr.nnz(), 2u);
}

TEST(Csr, FromMaskedStoresActiveEntriesOnly) {
  util::Rng rng(1);
  models::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = {};
  cfg.out_features = 8;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.75, sparse::DistributionKind::kUniform,
                         rng);
  const auto csr = sparse::CsrMatrix::from_masked(sm.layer(0));
  EXPECT_EQ(csr.nnz(), sm.layer(0).num_active());
  // Reconstruction matches the masked dense weights exactly.
  EXPECT_TRUE(csr.to_dense().equals(sm.layer(0).param().value));
}

TEST(Csr, MatvecMatchesDense) {
  const auto dense = random_tensor(tensor::Shape({7, 5}), 2);
  const auto x = random_tensor(tensor::Shape({5}), 3);
  const auto csr = sparse::CsrMatrix::from_dense(dense);
  const auto y = csr.matvec(x);
  ASSERT_EQ(y.numel(), 7u);
  for (std::size_t r = 0; r < 7; ++r) {
    float expect = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) expect += dense[r * 5 + c] * x[c];
    EXPECT_NEAR(y[r], expect, 1e-4f);
  }
}

TEST(Csr, MatmulNtMatchesDenseKernel) {
  const auto w = random_tensor(tensor::Shape({6, 9}), 4);
  const auto x = random_tensor(tensor::Shape({4, 9}), 5);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_TRUE(csr.matmul_nt(x).allclose(tensor::matmul_nt(x, w), 1e-4f));
}

TEST(Csr, SpmmMatchesDenseMatmulOnRandomMaskedMatrices) {
  for (const double density : {0.05, 0.3, 0.7}) {
    auto w = random_tensor(tensor::Shape({13, 9}), 31);
    // Random mask at the given density.
    util::Rng mask_rng(static_cast<std::uint64_t>(density * 1000));
    for (std::size_t i = 0; i < w.numel(); ++i) {
      if (mask_rng.uniform() > density) w[i] = 0.0f;
    }
    const auto x = random_tensor(tensor::Shape({6, 9}), 33);
    const auto csr = sparse::CsrMatrix::from_dense(w);
    const auto expected = tensor::matmul_nt(x, w);
    EXPECT_TRUE(csr.spmm(x).allclose(expected, 1e-4f))
        << "density " << density;
  }
}

TEST(Csr, SpmmHandlesEmptyRowsAndFullyDense) {
  // Row 1 is entirely masked; the result row must be exactly zero.
  tensor::Tensor w(tensor::Shape({3, 4}),
                   {1, -2, 0, 3, 0, 0, 0, 0, 4, 5, 6, 7});
  const auto x = random_tensor(tensor::Shape({5, 4}), 41);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto y = csr.spmm(x);
  for (std::size_t n = 0; n < 5; ++n) EXPECT_EQ(y[n * 3 + 1], 0.0f);
  EXPECT_TRUE(y.allclose(tensor::matmul_nt(x, w), 1e-4f));

  // Fully dense matrix: CSR must agree with the dense kernel too.
  const auto d = random_tensor(tensor::Shape({7, 6}), 43);
  const auto xd = random_tensor(tensor::Shape({4, 6}), 44);
  EXPECT_EQ(sparse::CsrMatrix::from_dense(d).nnz(), 42u);
  EXPECT_TRUE(sparse::CsrMatrix::from_dense(d).spmm(xd).allclose(
      tensor::matmul_nt(xd, d), 1e-4f));
}

TEST(Csr, SpmmIsThreadCountInvariant) {
  // Row-parallel chunks write disjoint outputs, so any thread count must
  // produce bit-identical results (0 = hardware concurrency).
  const auto w = random_tensor(tensor::Shape({33, 17}), 51);
  const auto x = random_tensor(tensor::Shape({9, 17}), 52);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto serial = csr.spmm(x, 1);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{5}, std::size_t{64}}) {
    EXPECT_TRUE(csr.spmm(x, threads).equals(serial))
        << "threads=" << threads;
  }
}

TEST(Csr, SpmmShapeChecks) {
  const auto w = random_tensor(tensor::Shape({3, 4}), 61);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_THROW(csr.spmm(random_tensor(tensor::Shape({2, 5}), 62)),
               util::CheckError);
  EXPECT_THROW(csr.spmm(random_tensor(tensor::Shape({4}), 63)),
               util::CheckError);
}

TEST(Csr, ScaleRowsScalesStoredValuesOnly) {
  tensor::Tensor w(tensor::Shape({2, 3}), {1, 0, 2, 0, 3, 0});
  auto csr = sparse::CsrMatrix::from_dense(w);
  csr.scale_rows(std::vector<float>{2.0f, -1.0f});
  tensor::Tensor expected(tensor::Shape({2, 3}), {2, 0, 4, 0, -3, 0});
  EXPECT_TRUE(csr.to_dense().equals(expected));
  EXPECT_THROW(csr.scale_rows(std::vector<float>{1.0f}), util::CheckError);
}

TEST(Csr, ShapeChecks) {
  const auto w = random_tensor(tensor::Shape({3, 4}), 6);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_THROW(csr.matvec(random_tensor(tensor::Shape({5}), 7)),
               util::CheckError);
  EXPECT_THROW(csr.matmul_nt(random_tensor(tensor::Shape({2, 5}), 8)),
               util::CheckError);
  EXPECT_THROW(
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({4}), 9)),
      util::CheckError);
}

class CsrDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CsrDensitySweep, SparseForwardMatchesMaskedDenseMlp) {
  // End-to-end: sparse-train state → CSR stack → forward equals the dense
  // masked model's eval-mode forward at every density.
  const double sparsity = GetParam();
  util::Rng rng(11);
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {24, 16};
  cfg.out_features = 5;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, sparsity,
                         sparse::DistributionKind::kUniform, rng);

  std::vector<sparse::CsrMatrix> layers;
  std::vector<tensor::Tensor> biases;
  for (std::size_t i = 0; i < sm.num_layers(); ++i) {
    layers.push_back(sparse::CsrMatrix::from_masked(sm.layer(i)));
  }
  // Collect biases in the same order (linear layers only).
  for (nn::Parameter* p : model.parameters()) {
    if (!p->sparsifiable) biases.push_back(p->value);
  }
  ASSERT_EQ(biases.size(), layers.size());
  const sparse::SparseLinearStack stack(std::move(layers), std::move(biases));

  model.set_training(false);
  const auto x = random_tensor(tensor::Shape({6, 12}), 13);
  const auto dense_out = model.forward(x);
  const auto sparse_out = stack.forward(x);
  EXPECT_TRUE(sparse_out.allclose(dense_out, 1e-3f));
  EXPECT_EQ(stack.total_nnz(), sm.total_active());
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrDensitySweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.98));

TEST(Csr, FromDenseFlattensHigherRanksRowMajor) {
  // A conv weight [Cout, Cin, K, K] converts as [Cout, Cin·K·K] — the same
  // 2-d view nn::Conv2d lowers to for its matmul.
  const auto w = random_tensor(tensor::Shape({5, 3, 2, 2}), 31);
  const auto csr = sparse::CsrMatrix::from_dense(w);
  EXPECT_EQ(csr.rows(), 5u);
  EXPECT_EQ(csr.cols(), 12u);
  EXPECT_TRUE(csr.to_dense().equals(w.reshaped(tensor::Shape({5, 12}))));
}

TEST(Csr, SpmmColsMatchesDenseMatmul) {
  // Y = A·B over a column-per-position patch matrix, vs the dense kernel.
  util::Rng rng(7);
  tensor::Tensor a = random_tensor(tensor::Shape({6, 9}), 41);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if ((i * 2654435761u) % 10 < 7) a[i] = 0.0f;  // ~70% sparse
  }
  const auto csr = sparse::CsrMatrix::from_dense(a);
  const auto b = random_tensor(tensor::Shape({9, 13}), 42);
  const auto expected = tensor::matmul(a, b);
  EXPECT_TRUE(csr.spmm_cols(b).allclose(expected, 1e-5f));

  // The into-variant writes the same values into caller storage.
  tensor::Tensor out({6, 13});
  csr.spmm_cols_into(b, out.raw());
  EXPECT_TRUE(out.allclose(expected, 1e-5f));
}

TEST(Csr, SpmmColsShapeChecks) {
  const auto csr =
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({3, 4}), 1));
  EXPECT_THROW(csr.spmm_cols(random_tensor(tensor::Shape({5, 2}), 2)),
               util::CheckError);
  EXPECT_THROW(csr.spmm_cols(random_tensor(tensor::Shape({4}), 3)),
               util::CheckError);
}

TEST(Csr, Im2colSpmmMatchesDenseConvReference) {
  // The serve-side conv lowering (im2col + spmm_cols with the masked
  // [Cout, Cin·K·K] matrix) must reproduce nn::Conv2d's dense forward on
  // the same masked weights, across stride/padding variants.
  struct Variant {
    std::size_t kernel, stride, padding;
  };
  for (const Variant v : {Variant{3, 1, 1}, Variant{3, 2, 0},
                          Variant{5, 2, 2}, Variant{1, 1, 0}}) {
    util::Rng rng(100 + v.kernel * 10 + v.stride);
    nn::Conv2d conv(3, 6, v.kernel, v.stride, v.padding, rng);
    // Mask ~60% of the weights to zero (stored-zero topology).
    auto& w = conv.weight().value;
    for (std::size_t i = 0; i < w.numel(); ++i) {
      if ((i * 2654435761u) % 10 < 6) w[i] = 0.0f;
    }
    conv.set_training(false);
    const auto x = random_tensor(tensor::Shape({2, 3, 9, 9}), 55);
    const auto expected = conv.forward(x);

    const auto csr = sparse::CsrMatrix::from_dense(w);
    tensor::ConvGeometry g;
    g.in_channels = 3;
    g.in_h = 9;
    g.in_w = 9;
    g.kernel_h = v.kernel;
    g.kernel_w = v.kernel;
    g.stride = v.stride;
    g.padding = v.padding;
    const std::size_t oh = g.out_h(), ow = g.out_w();
    tensor::Tensor y({2, 6, oh, ow});
    tensor::Tensor cols({g.patch_size(), oh * ow});
    for (std::size_t n = 0; n < 2; ++n) {
      tensor::im2col(x.raw() + n * 3 * 9 * 9, g, cols);
      csr.spmm_cols_into(cols, y.raw() + n * 6 * oh * ow);
    }
    EXPECT_TRUE(y.allclose(expected, 1e-4f))
        << "k" << v.kernel << " s" << v.stride << " p" << v.padding;
  }
}

TEST(Csr, StackValidatesChaining) {
  std::vector<sparse::CsrMatrix> layers;
  layers.push_back(
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({4, 8}), 14)));
  layers.push_back(
      sparse::CsrMatrix::from_dense(random_tensor(tensor::Shape({3, 5}), 15)));
  std::vector<tensor::Tensor> biases(2);
  EXPECT_THROW(
      sparse::SparseLinearStack(std::move(layers), std::move(biases)),
      util::CheckError);
}

}  // namespace
}  // namespace dstee
