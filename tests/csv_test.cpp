// Unit tests for util::CsvWriter covering the header-documented contract:
// parent-directory creation, RFC 4180 escaping, truncate-on-open, and
// CheckError when the path cannot be opened.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace dstee {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  // ctest -j runs each TEST_F as a separate process in the same working
  // directory, so the scratch dir must be unique per test.
  CsvWriterTest()
      : root_(std::string("csv_test_out_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()) {
  }

  void SetUp() override { fs::remove_all(root_); }
  void TearDown() override { fs::remove_all(root_); }

  std::string path(const std::string& rel) const {
    return (root_ / rel).string();
  }

  const fs::path root_;
};

TEST_F(CsvWriterTest, CreatesNestedParentDirectories) {
  // The documented use case: bench binaries write under bench_results/...
  // without creating the directory themselves.
  const std::string out = path("bench_results/nested/run.csv");
  util::CsvWriter w(out, {"epoch", "acc"});
  w.write_row({"1", "0.5"});
  w.flush();
  EXPECT_TRUE(fs::exists(out));
  EXPECT_EQ(read_file(out), "epoch,acc\n1,0.5\n");
}

TEST_F(CsvWriterTest, EscapesCommasQuotesAndNewlines) {
  EXPECT_EQ(util::csv_escape("plain"), "plain");
  EXPECT_EQ(util::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(util::csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(util::csv_escape("cr\rlf"), "\"cr\rlf\"");
  EXPECT_EQ(util::csv_escape(""), "");
}

TEST_F(CsvWriterTest, WritesRfc4180QuotedFieldsToDisk) {
  const std::string out = path("escaped.csv");
  util::CsvWriter w(out, {"name", "note"});
  w.write_row({"a,b", "said \"ok\""});
  w.write_row({"multi\nline", "plain"});
  w.flush();
  EXPECT_EQ(read_file(out),
            "name,note\n"
            "\"a,b\",\"said \"\"ok\"\"\"\n"
            "\"multi\nline\",plain\n");
}

TEST_F(CsvWriterTest, ThrowsCheckErrorWhenPathIsUnopenable) {
  // A path that names an existing directory can never be opened as a file.
  fs::create_directories(path("taken"));
  EXPECT_THROW(util::CsvWriter(path("taken"), {"col"}), util::CheckError);
  // A "parent" that is a regular file makes directory creation impossible.
  { std::ofstream(path("blocker")) << "x"; }
  EXPECT_THROW(util::CsvWriter(path("blocker/out.csv"), {"col"}),
               util::CheckError);
}

TEST_F(CsvWriterTest, TruncatesExistingFileOnOpen) {
  const std::string out = path("trunc.csv");
  {
    util::CsvWriter w(out, {"a", "b"});
    w.write_row({"1", "2"});
    w.write_row({"3", "4"});
    w.flush();
  }
  util::CsvWriter w(out, {"a", "b"});
  w.flush();
  EXPECT_EQ(read_file(out), "a,b\n");
}

TEST_F(CsvWriterTest, CountsDataRowsExcludingHeader) {
  util::CsvWriter w(path("count.csv"), {"x"});
  EXPECT_EQ(w.rows_written(), 0u);
  w.write_row({"1"});
  w.write_row({"2"});
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_THROW(w.write_row({"too", "wide"}), util::CheckError);
  EXPECT_EQ(w.rows_written(), 2u);
}

}  // namespace
}  // namespace dstee
