// Unit tests for Shape and Tensor.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/init.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dstee {
namespace {

TEST(Shape, RankAndNumel) {
  tensor::Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s.dim(1), 3u);
}

TEST(Shape, ScalarShape) {
  tensor::Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, StridesRowMajor) {
  tensor::Shape s({2, 3, 4});
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12u);
  EXPECT_EQ(strides[1], 4u);
  EXPECT_EQ(strides[2], 1u);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(tensor::Shape({2, 3}), tensor::Shape({2, 3}));
  EXPECT_NE(tensor::Shape({2, 3}), tensor::Shape({3, 2}));
  EXPECT_EQ(tensor::Shape({64, 3, 3, 3}).to_string(), "[64, 3, 3, 3]");
}

TEST(Shape, DimOutOfRangeThrows) {
  tensor::Shape s({2});
  EXPECT_THROW(s.dim(1), util::CheckError);
}

TEST(Tensor, DefaultIsScalarZero) {
  tensor::Tensor t;
  EXPECT_EQ(t.numel(), 1u);
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, ZeroInitialized) {
  tensor::Tensor t({3, 4});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructWithValues) {
  tensor::Tensor t(tensor::Shape({2, 2}), {1, 2, 3, 4});
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, ConstructWithWrongCountThrows) {
  EXPECT_THROW(tensor::Tensor(tensor::Shape({2, 2}), {1, 2, 3}),
               util::CheckError);
}

TEST(Tensor, FromVector) {
  const auto t = tensor::Tensor::from_vector({5, 6, 7});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.numel(), 3u);
  EXPECT_EQ(t[2], 7.0f);
}

TEST(Tensor, FullOnesZeros) {
  const auto ones = tensor::Tensor::ones(tensor::Shape({2, 2}));
  const auto zeros = tensor::Tensor::zeros(tensor::Shape({2, 2}));
  EXPECT_EQ(ones[3], 1.0f);
  EXPECT_EQ(zeros[3], 0.0f);
  const auto like = tensor::Tensor::zeros_like(ones);
  EXPECT_EQ(like.shape(), ones.shape());
}

TEST(Tensor, At4Indexing) {
  tensor::Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  // flat index: ((1*3+2)*4+3)*5+4 = 119
  EXPECT_EQ(t[119], 9.0f);
}

TEST(Tensor, CheckedAccessThrows) {
  tensor::Tensor t({2, 2});
  EXPECT_THROW(t.at(4), util::CheckError);
  EXPECT_THROW(t.at2(2, 0), util::CheckError);
  tensor::Tensor r1({4});
  EXPECT_THROW(r1.at2(0, 0), util::CheckError);
}

TEST(Tensor, Fill) {
  tensor::Tensor t({3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ReshapePreservesData) {
  tensor::Tensor t(tensor::Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const auto r = t.reshaped(tensor::Shape({3, 2}));
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped(tensor::Shape({4, 2})), util::CheckError);
}

TEST(Tensor, ReshapeInPlace) {
  tensor::Tensor t({4});
  t.reshape_in_place(tensor::Shape({2, 2}));
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_THROW(t.reshape_in_place(tensor::Shape({5})), util::CheckError);
}

TEST(Tensor, EqualsAndAllclose) {
  tensor::Tensor a(tensor::Shape({2}), {1.0f, 2.0f});
  tensor::Tensor b(tensor::Shape({2}), {1.0f, 2.0f});
  tensor::Tensor c(tensor::Shape({2}), {1.0f, 2.00001f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE(a.allclose(c, 1e-3f));
  EXPECT_FALSE(a.allclose(c, 1e-7f));
  tensor::Tensor d({3});
  EXPECT_FALSE(a.allclose(d));
}

TEST(Tensor, ToStringTruncates) {
  tensor::Tensor t({100});
  const auto s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(Init, KaimingStdMatchesFanIn) {
  tensor::Tensor w({256, 64});  // fan_in = 64 → std = sqrt(2/64) = 0.1767
  util::Rng rng(3);
  tensor::fill_kaiming_normal(w, rng);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    sum_sq += static_cast<double>(w[i]) * w[i];
  }
  const double stddev = std::sqrt(sum_sq / static_cast<double>(w.numel()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 64.0), 0.01);
}

TEST(Init, XavierBounds) {
  tensor::Tensor w({32, 32});
  util::Rng rng(4);
  tensor::fill_xavier_uniform(w, rng);
  const float bound = std::sqrt(6.0f / 64.0f);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w[i]), bound);
  }
}

TEST(Init, FanComputation) {
  EXPECT_EQ(tensor::fan_in_of(tensor::Shape({10, 20})), 20u);
  EXPECT_EQ(tensor::fan_out_of(tensor::Shape({10, 20})), 10u);
  EXPECT_EQ(tensor::fan_in_of(tensor::Shape({16, 8, 3, 3})), 72u);
  EXPECT_EQ(tensor::fan_out_of(tensor::Shape({16, 8, 3, 3})), 144u);
  EXPECT_THROW(tensor::fan_in_of(tensor::Shape({5})), util::CheckError);
}

TEST(Init, UniformFillRespectsBounds) {
  tensor::Tensor t({1000});
  util::Rng rng(5);
  tensor::fill_uniform(t, rng, -0.5f, 0.5f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LT(t[i], 0.5f);
  }
}

}  // namespace
}  // namespace dstee
