// Drop/grow policy tests — the part of the algorithm each method defines.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "methods/drop_policy.hpp"
#include "methods/grow_policy.hpp"
#include "models/mlp.hpp"
#include "sparse/sparse_model.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

// Fixture: a single masked linear layer with controllable weights/grads.
class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture()
      : rng_(99),
        model_(make_config(), rng_),
        smodel_(model_, 0.5, sparse::DistributionKind::kUniform, rng_) {}

  static models::MlpConfig make_config() {
    models::MlpConfig cfg;
    cfg.in_features = 8;
    cfg.hidden = {};
    cfg.out_features = 8;  // single 8x8 weight
    return cfg;
  }

  sparse::MaskedParameter& layer() { return smodel_.layer(0); }

  util::Rng rng_;
  models::Mlp model_;
  sparse::SparseModel smodel_;
};

TEST_F(PolicyFixture, MagnitudeDropPicksSmallestActive) {
  auto& p = layer().param();
  // Give active weights distinct magnitudes by index.
  const auto active = layer().mask().active_indices();
  for (std::size_t i = 0; i < active.size(); ++i) {
    p.value[active[i]] = 0.01f * static_cast<float>(i + 1);
  }
  methods::MagnitudeDrop drop;
  util::Rng r(1);
  methods::DropContext ctx{layer(), p.grad, 0.1, r};
  const auto picked = drop.select(ctx, 3);
  ASSERT_EQ(picked.size(), 3u);
  // The three smallest-magnitude active weights are active[0..2].
  const std::set<std::size_t> expect{active[0], active[1], active[2]};
  for (const auto idx : picked) EXPECT_TRUE(expect.count(idx)) << idx;
}

TEST_F(PolicyFixture, MagnitudeDropNeverSelectsInactive) {
  methods::MagnitudeDrop drop;
  util::Rng r(2);
  methods::DropContext ctx{layer(), layer().param().grad, 0.1, r};
  const auto picked = drop.select(ctx, 5);
  for (const auto idx : picked) {
    EXPECT_TRUE(layer().mask().is_active(idx));
  }
}

TEST_F(PolicyFixture, RandomDropSelectsActiveOnly) {
  methods::RandomDrop drop;
  util::Rng r(3);
  methods::DropContext ctx{layer(), layer().param().grad, 0.1, r};
  const auto picked = drop.select(ctx, 10);
  EXPECT_EQ(picked.size(), 10u);
  std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto idx : picked) {
    EXPECT_TRUE(layer().mask().is_active(idx));
  }
}

TEST_F(PolicyFixture, RandomDropTooManyThrows) {
  methods::RandomDrop drop;
  util::Rng r(4);
  methods::DropContext ctx{layer(), layer().param().grad, 0.1, r};
  EXPECT_THROW(drop.select(ctx, layer().num_active() + 1), util::CheckError);
}

TEST_F(PolicyFixture, MagnitudeGradientDropSparesHighGradientWeights) {
  auto& p = layer().param();
  const auto active = layer().mask().active_indices();
  ASSERT_GE(active.size(), 2u);
  // Two tiny weights; one has a huge gradient (MEST keeps it).
  for (const auto idx : active) p.value[idx] = 1.0f;
  p.value[active[0]] = 1e-4f;
  p.value[active[1]] = 1e-4f;
  p.grad.fill(0.0f);
  p.grad[active[1]] = 10.0f;

  methods::MagnitudeGradientDrop drop(1.0);
  util::Rng r(5);
  methods::DropContext ctx{layer(), p.grad, 0.1, r};
  const auto picked = drop.select(ctx, 1);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], active[0]);  // the one WITHOUT gradient support
}

TEST_F(PolicyFixture, SignFlipDropPrefersFlippingWeights) {
  auto& p = layer().param();
  const auto active = layer().mask().active_indices();
  for (const auto idx : active) {
    p.value[idx] = 1.0f;
    p.grad[idx] = 0.0f;
  }
  // active[0]: small weight, large positive gradient → next step flips sign.
  p.value[active[0]] = 0.01f;
  p.grad[active[0]] = 1.0f;
  methods::SignFlipDrop drop;
  util::Rng r(6);
  methods::DropContext ctx{layer(), p.grad, 0.1, r};
  const auto picked = drop.select(ctx, 1);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], active[0]);
}

TEST_F(PolicyFixture, GradientGrowScoresAreAbsoluteGradients) {
  auto& p = layer().param();
  for (std::size_t i = 0; i < p.grad.numel(); ++i) {
    p.grad[i] = (i % 2 == 0) ? -static_cast<float>(i) : static_cast<float>(i);
  }
  methods::GradientGrow grow;
  util::Rng r(7);
  methods::GrowContext ctx{layer(), 0, p.grad, 100, r};
  const auto scores = grow.scores(ctx);
  for (std::size_t i = 0; i < scores.numel(); ++i) {
    EXPECT_EQ(scores[i], std::fabs(p.grad[i]));
  }
}

TEST_F(PolicyFixture, RandomGrowScoresInUnitInterval) {
  methods::RandomGrow grow;
  util::Rng r(8);
  methods::GrowContext ctx{layer(), 0, layer().param().grad, 100, r};
  const auto scores = grow.scores(ctx);
  for (std::size_t i = 0; i < scores.numel(); ++i) {
    EXPECT_GE(scores[i], 0.0f);
    EXPECT_LT(scores[i], 1.0f);
  }
}

TEST_F(PolicyFixture, DstEeBonusIsLargestForNeverActiveWeights) {
  auto& counter = layer().counter();
  counter.fill(0.0f);
  counter[0] = 10.0f;  // frequently active
  counter[1] = 1.0f;   // rarely active
  // counter[2] == 0    // never active
  methods::DstEeGrow::Config cfg;
  cfg.c = 1e-2;
  cfg.eps = 1e-3;
  methods::DstEeGrow grow(cfg);
  util::Rng r(9);
  layer().param().grad.fill(0.0f);  // isolate the exploration term
  methods::GrowContext ctx{layer(), 0, layer().param().grad, 1000, r};
  const auto scores = grow.scores(ctx);
  EXPECT_GT(scores[2], scores[1]);
  EXPECT_GT(scores[1], scores[0]);
}

TEST_F(PolicyFixture, DstEeScoreIsExactlyEqOne) {
  // S = |g| + c·ln(t)/(N+ε) — verify elementwise against the formula.
  auto& p = layer().param();
  auto& counter = layer().counter();
  for (std::size_t i = 0; i < p.grad.numel(); ++i) {
    p.grad[i] = 0.1f * static_cast<float>(i) - 1.0f;
    counter[i] = static_cast<float>(i % 5);
  }
  methods::DstEeGrow::Config cfg;
  cfg.c = 3e-3;
  cfg.eps = 1e-3;
  methods::DstEeGrow grow(cfg);
  util::Rng r(10);
  const std::size_t t = 512;
  methods::GrowContext ctx{layer(), 0, p.grad, t, r};
  const auto scores = grow.scores(ctx);
  for (std::size_t i = 0; i < scores.numel(); ++i) {
    const double expect =
        std::fabs(p.grad[i]) +
        cfg.c * std::log(static_cast<double>(t)) / (counter[i] + cfg.eps);
    EXPECT_NEAR(scores[i], expect, 1e-5);
  }
}

TEST_F(PolicyFixture, DstEeBonusGrowsWithTime) {
  layer().counter().fill(0.0f);
  layer().param().grad.fill(0.0f);
  methods::DstEeGrow::Config cfg;
  methods::DstEeGrow grow(cfg);
  util::Rng r(11);
  methods::GrowContext early{layer(), 0, layer().param().grad, 10, r};
  methods::GrowContext late{layer(), 0, layer().param().grad, 10000, r};
  EXPECT_LT(grow.scores(early)[0], grow.scores(late)[0]);
}

TEST_F(PolicyFixture, DstEeInvalidConfigThrows) {
  methods::DstEeGrow::Config cfg;
  cfg.eps = 0.0;
  EXPECT_THROW(methods::DstEeGrow{cfg}, util::CheckError);
  cfg.eps = 1e-3;
  cfg.c = -1.0;
  EXPECT_THROW(methods::DstEeGrow{cfg}, util::CheckError);
}

TEST_F(PolicyFixture, MomentumGrowSmoothsGradients) {
  methods::MomentumGrow grow(0.5);
  util::Rng r(12);
  auto& p = layer().param();
  p.grad.fill(1.0f);
  methods::GrowContext ctx{layer(), 0, p.grad, 100, r};
  const auto s1 = grow.scores(ctx);   // ema = 0.5
  const auto s2 = grow.scores(ctx);   // ema = 0.75
  EXPECT_NEAR(s1[0], 0.5f, 1e-6);
  EXPECT_NEAR(s2[0], 0.75f, 1e-6);
}

TEST_F(PolicyFixture, MomentumGrowTracksLayersIndependently) {
  methods::MomentumGrow grow(0.0);  // no smoothing → score = |grad|
  util::Rng r(13);
  auto& p = layer().param();
  p.grad.fill(2.0f);
  methods::GrowContext ctx0{layer(), 0, p.grad, 100, r};
  methods::GrowContext ctx5{layer(), 5, p.grad, 100, r};
  EXPECT_NEAR(grow.scores(ctx0)[0], 2.0f, 1e-6);
  EXPECT_NEAR(grow.scores(ctx5)[0], 2.0f, 1e-6);
}

TEST_F(PolicyFixture, BlendedGrowEndpointsMatchParents) {
  auto& p = layer().param();
  for (std::size_t i = 0; i < p.grad.numel(); ++i) {
    p.grad[i] = static_cast<float>(i);
  }
  util::Rng r(14);
  methods::BlendedGrow pure_gradient(1.0);
  methods::GrowContext ctx{layer(), 0, p.grad, 100, r};
  const auto s = pure_gradient.scores(ctx);
  // λ=1: normalized |grad| — max index must be the max-|grad| index.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < s.numel(); ++i) {
    if (s[i] > s[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, p.grad.numel() - 1);
  EXPECT_THROW(methods::BlendedGrow{1.5}, util::CheckError);
}

}  // namespace
}  // namespace dstee
