// Serving-path tests: CompiledNet lowering (CSR SpMM, BN folding, dropout
// elision), the micro-batching InferenceServer (flush-on-full,
// flush-on-timeout, concurrency, shutdown semantics) and the checkpoint →
// CompiledNet round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "methods/dst_engine.hpp"
#include "models/mlp.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/losses.hpp"
#include "nn/pooling.hpp"
#include "optim/optimizer.hpp"
#include "serve/compiled_net.hpp"
#include "serve/server.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"
#include "test_helpers.hpp"
#include "train/checkpoint.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

models::MlpConfig small_cfg(bool batch_norm = false, double dropout = 0.0) {
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {24, 16};
  cfg.out_features = 5;
  cfg.batch_norm = batch_norm;
  cfg.dropout = dropout;
  return cfg;
}

/// Builds a sparse MLP, runs a few training-mode batches so batch-norm
/// running statistics move off their init, and switches to eval.
struct CompiledHarness {
  explicit CompiledHarness(double sparsity, bool batch_norm = false,
                           double dropout = 0.0, std::uint64_t seed = 3)
      : rng(seed),
        model(small_cfg(batch_norm, dropout), rng),
        smodel(model, sparsity, sparse::DistributionKind::kErk, rng) {
    for (int i = 0; i < 3; ++i) {
      model.forward(random_tensor(tensor::Shape({8, 12}), 100 + i));
    }
    model.set_training(false);
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
};

TEST(CompiledNet, MatchesDenseEvalForward) {
  CompiledHarness h(0.9);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({6, 12}), 7);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
  EXPECT_EQ(net.total_nnz(), h.smodel.total_active());
  EXPECT_EQ(net.input_features(), 12u);
}

TEST(CompiledNet, MatchesDenseWithBatchNormAndDropout) {
  CompiledHarness h(0.8, /*batch_norm=*/true, /*dropout=*/0.25);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 9);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
  // Dropout layers disappear; BN folds into the preceding spmm, so the op
  // list is exactly linear+relu pairs plus the head: 3 spmm + 2 relu.
  EXPECT_EQ(net.num_elided(), 2u);
  EXPECT_EQ(net.num_ops(), 5u);
  EXPECT_EQ(net.num_sparse_ops(), 3u);
}

TEST(CompiledNet, StandaloneBatchNormLowersToScaleShift) {
  util::Rng rng(5);
  nn::Sequential seq;
  auto& bn = seq.emplace<nn::BatchNorm1d>(6);
  seq.emplace<nn::Tanh>();
  // Move running stats off init so the test is not trivially identity.
  seq.forward(random_tensor(tensor::Shape({16, 6}), 21));
  seq.set_training(false);
  (void)bn;

  const auto net = serve::CompiledNet::compile(seq);
  EXPECT_EQ(net.num_ops(), 2u);  // scale_shift + tanh, nothing folded
  const auto x = random_tensor(tensor::Shape({4, 6}), 22);
  EXPECT_TRUE(net.forward(x).allclose(seq.forward(x), 1e-4f));
}

TEST(CompiledNet, DenseFallbackWithoutSparseState) {
  CompiledHarness h(0.9);
  // No SparseModel passed: zeros in the masked weights still encode the
  // topology, so the compiled net is identical.
  const auto net = serve::CompiledNet::compile(h.model);
  const auto x = random_tensor(tensor::Shape({3, 12}), 11);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
  EXPECT_LE(net.total_nnz(), h.smodel.total_active());
}

TEST(CompiledNet, PoolingAndFlattenMatchTrainingLayers) {
  // The serve pool ops re-implement the nn forward loops statelessly;
  // this equivalence test pins them together so a future edit to either
  // side cannot silently desynchronize train-time and serve-time shapes.
  nn::Sequential seq;
  seq.emplace<nn::MaxPool2d>(2);
  seq.emplace<nn::AvgPool2d>(2);
  seq.emplace<nn::GlobalAvgPool>();
  seq.emplace<nn::LeakyReLU>(0.1f);
  seq.set_training(false);

  const auto x = random_tensor(tensor::Shape({3, 4, 16, 16}), 71);
  const auto net = serve::CompiledNet::compile(seq);
  EXPECT_EQ(net.num_ops(), 4u);
  EXPECT_TRUE(net.forward(x).allclose(seq.forward(x), 1e-6f));

  nn::Sequential flat;
  flat.emplace<nn::Flatten>();
  flat.emplace<nn::Sigmoid>();
  flat.set_training(false);
  const auto xf = random_tensor(tensor::Shape({2, 3, 5, 5}), 72);
  EXPECT_TRUE(serve::CompiledNet::compile(flat).forward(xf).allclose(
      flat.forward(xf), 1e-6f));
}

TEST(CompiledNet, RejectsUnsupportedLayers) {
  util::Rng rng(6);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
  seq.set_training(false);
  EXPECT_THROW(serve::CompiledNet::compile(seq), util::CheckError);
}

TEST(ServerStats, PercentilesAreInterpolated) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(serve::percentile({}, 0.5), 0.0);
  EXPECT_THROW(serve::percentile(sorted, 1.5), util::CheckError);
}

TEST(Server, FlushOnFullBatch) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 60000.0;  // never flush on time — only on fill
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 40 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 1u);  // one full micro-batch, no timeout needed
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 4.0);
}

TEST(Server, FlushOnTimeout) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 64;       // far more than we submit
  cfg.max_delay_ms = 5.0;   // so only the deadline can flush
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 50 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);  // must not hang
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(Server, ConcurrentClientsGetTheirOwnAnswers) {
  CompiledHarness h(0.8);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 4;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.5;
  serve::InferenceServer server(net, cfg);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 20;
  std::atomic<std::size_t> mismatches{0};

  auto client = [&](std::size_t id) {
    for (std::size_t i = 0; i < kPerClient; ++i) {
      const auto x =
          random_tensor(tensor::Shape({12}), 1000 + id * kPerClient + i);
      // Reference through the same compiled net, single-threaded: the CSR
      // row reduction order is batch-independent, so results must agree to
      // float round-off regardless of how requests get batched.
      const auto expected =
          net.forward(x.reshaped(tensor::Shape({1, 12})));
      const auto got = server.submit(x).get();
      if (got.numel() != 5 ||
          !got.allclose(expected.reshaped(tensor::Shape({5})), 1e-6f)) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (auto& t : clients) t.join();
  server.shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server.stats().requests, kClients * kPerClient);
}

TEST(Server, ShutdownDrainsPendingRequests) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 10000.0;  // only shutdown can flush the tail
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 11; ++i) {  // not a multiple of max_batch
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 60 + i)));
  }
  server.shutdown();
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  EXPECT_EQ(server.stats().requests, 11u);
  EXPECT_THROW(server.submit(random_tensor(tensor::Shape({12}), 99)),
               util::CheckError);
}

TEST(Server, RejectsWrongFeatureCount) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::InferenceServer server(net, {});
  EXPECT_THROW(server.submit(random_tensor(tensor::Shape({7}), 1)),
               util::CheckError);
  EXPECT_THROW(server.submit(random_tensor(tensor::Shape({2, 12}), 1)),
               util::CheckError);
}

// --- checkpoint → CompiledNet round trip -------------------------------

TEST(ServeCheckpoint, TrainedMlpRoundTripsThroughDisk) {
  // Own scratch dir: gap_checkpoint_test remove_all()s test_ckpt/, and
  // ctest -j runs both binaries concurrently in the same cwd.
  const std::string path = "serve_ckpt/serve_roundtrip.bin";
  models::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = {16};
  cfg.out_features = 4;

  util::Rng rng(31);
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.8, sparse::DistributionKind::kErk,
                             rng);
  optim::Sgd::Config scfg;
  scfg.lr = 0.05;
  optim::Sgd optimizer(model.parameters(), scfg);

  methods::DstEngineConfig ecfg;
  ecfg.schedule.delta_t = 5;
  ecfg.schedule.total_iterations = 40;
  ecfg.schedule.initial_drop_fraction = 0.3;
  ecfg.drop = std::make_unique<methods::MagnitudeDrop>();
  ecfg.grow = std::make_unique<methods::DstEeGrow>(methods::DstEeGrow::Config{});
  methods::DstEngine engine(smodel, optimizer, std::move(ecfg),
                            rng.fork("engine"));

  // A real (if tiny) DST training loop on random data.
  nn::SoftmaxCrossEntropy loss;
  for (std::size_t it = 1; it <= 40; ++it) {
    const auto x = random_tensor(tensor::Shape({16, 8}), 200 + it);
    std::vector<std::size_t> labels(16);
    for (std::size_t i = 0; i < 16; ++i) labels[i] = (it + i) % 4;
    model.zero_grad();
    loss.forward(model.forward(x), labels);
    model.backward(loss.backward());
    engine.maybe_update(it, 0.05);
    smodel.apply_masks_to_grads();
    optimizer.step();
    smodel.apply_masks_to_values();
  }
  model.set_training(false);

  const auto in_memory = serve::CompiledNet::compile(model, &smodel);
  train::save_checkpoint(path, model, &smodel);

  // Fresh architecture, different init, different topology — everything
  // must come from the file.
  util::Rng rng2(99);
  models::Mlp loaded(cfg, rng2);
  sparse::SparseModel loaded_state(loaded, 0.8,
                                   sparse::DistributionKind::kErk, rng2);
  const auto from_disk = serve::CompiledNet::from_checkpoint(
      path, loaded, &loaded_state);

  EXPECT_EQ(from_disk.total_nnz(), in_memory.total_nnz());
  const auto x = random_tensor(tensor::Shape({10, 8}), 77);
  const auto expected = in_memory.forward(x);
  const auto actual = from_disk.forward(x);
  EXPECT_TRUE(actual.allclose(expected, 1e-7f));  // identical logits
  // And both still match the eval-mode dense model.
  EXPECT_TRUE(actual.allclose(model.forward(x), 1e-4f));
}

TEST(ServeCheckpoint, BatchNormRunningStatsSurviveTheRoundTrip) {
  // Regression: checkpoint v1 persisted only parameters, so gamma/beta
  // came back but running mean/var stayed at init and a reloaded BN model
  // silently served the wrong affine constants.
  const std::string path = "serve_ckpt/serve_bn_roundtrip.bin";
  CompiledHarness h(0.8, /*batch_norm=*/true);  // ctor moves running stats
  const auto in_memory = serve::CompiledNet::compile(h.model, &h.smodel);
  train::save_checkpoint(path, h.model, &h.smodel);

  CompiledHarness loaded(0.8, /*batch_norm=*/true, 0.0, /*seed=*/123);
  const auto from_disk =
      serve::CompiledNet::from_checkpoint(path, loaded.model,
                                          &loaded.smodel);

  // The loaded module tree itself must carry the saved running stats
  // (two BN layers × {mean, var}).
  const auto saved = h.model.state_buffers();
  const auto restored = loaded.model.state_buffers();
  ASSERT_EQ(saved.size(), 4u);
  ASSERT_EQ(restored.size(), 4u);
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_TRUE(restored[i]->allclose(*saved[i], 1e-7f));
  }
  const auto x = random_tensor(tensor::Shape({9, 12}), 88);
  EXPECT_TRUE(from_disk.forward(x).allclose(in_memory.forward(x), 1e-7f));
  EXPECT_TRUE(from_disk.forward(x).allclose(h.model.forward(x), 1e-4f));
}

}  // namespace
}  // namespace dstee
