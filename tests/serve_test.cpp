// Serving-path tests: CompiledNet lowering (CSR SpMM, BN folding, dropout
// elision), the micro-batching InferenceServer (flush-on-full,
// flush-on-timeout, concurrency, shutdown semantics) and the checkpoint →
// CompiledNet round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "methods/dst_engine.hpp"
#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/losses.hpp"
#include "nn/pooling.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "serve/compiled_net.hpp"
#include "serve/stats.hpp"
#include "serve/delta.hpp"
#include "serve/fusion.hpp"
#include "serve/passes.hpp"
#include "serve/plan.hpp"
#include "serve/server.hpp"
#include "sparse/flops.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"
#include "test_helpers.hpp"
#include "train/checkpoint.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

models::MlpConfig small_cfg(bool batch_norm = false, double dropout = 0.0) {
  models::MlpConfig cfg;
  cfg.in_features = 12;
  cfg.hidden = {24, 16};
  cfg.out_features = 5;
  cfg.batch_norm = batch_norm;
  cfg.dropout = dropout;
  return cfg;
}

/// Builds a sparse MLP, runs a few training-mode batches so batch-norm
/// running statistics move off their init, and switches to eval.
struct CompiledHarness {
  explicit CompiledHarness(double sparsity, bool batch_norm = false,
                           double dropout = 0.0, std::uint64_t seed = 3)
      : rng(seed),
        model(small_cfg(batch_norm, dropout), rng),
        smodel(model, sparsity, sparse::DistributionKind::kErk, rng) {
    for (int i = 0; i < 3; ++i) {
      model.forward(random_tensor(tensor::Shape({8, 12}), 100 + i));
    }
    model.set_training(false);
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
};

TEST(CompiledNet, MatchesDenseEvalForward) {
  CompiledHarness h(0.9);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({6, 12}), 7);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
  EXPECT_EQ(net.total_nnz(), h.smodel.total_active());
  EXPECT_EQ(net.input_features(), 12u);
}

TEST(CompiledNet, MatchesDenseWithBatchNormAndDropout) {
  CompiledHarness h(0.8, /*batch_norm=*/true, /*dropout=*/0.25);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 9);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
  // Dropout layers disappear; BN folds into the preceding spmm, so the op
  // list is exactly linear+relu pairs plus the head: 3 spmm + 2 relu.
  EXPECT_EQ(net.num_elided(), 2u);
  EXPECT_EQ(net.num_ops(), 5u);
  EXPECT_EQ(net.num_sparse_ops(), 3u);
}

TEST(CompiledNet, StandaloneBatchNormLowersToScaleShift) {
  util::Rng rng(5);
  nn::Sequential seq;
  auto& bn = seq.emplace<nn::BatchNorm1d>(6);
  seq.emplace<nn::Tanh>();
  // Move running stats off init so the test is not trivially identity.
  seq.forward(random_tensor(tensor::Shape({16, 6}), 21));
  seq.set_training(false);
  (void)bn;

  const auto net = serve::CompiledNet::compile(seq);
  EXPECT_EQ(net.num_ops(), 2u);  // scale_shift + tanh, nothing folded
  const auto x = random_tensor(tensor::Shape({4, 6}), 22);
  EXPECT_TRUE(net.forward(x).allclose(seq.forward(x), 1e-4f));
}

TEST(CompiledNet, DenseFallbackWithoutSparseState) {
  CompiledHarness h(0.9);
  // No SparseModel passed: zeros in the masked weights still encode the
  // topology, so the compiled net is identical.
  const auto net = serve::CompiledNet::compile(h.model);
  const auto x = random_tensor(tensor::Shape({3, 12}), 11);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
  EXPECT_LE(net.total_nnz(), h.smodel.total_active());
}

// nn/ and serve/ share the stateless kernels in src/kernels/, so there is
// no separate pooling/activation equivalence test pinning the two sides —
// the conv/VGG/ResNet end-to-end comparisons below cover composition.

/// A layer the compiler has no lowering for.
struct UnloweredModule final : nn::Module {
  tensor::Tensor forward(const tensor::Tensor& x) override { return x; }
  tensor::Tensor backward(const tensor::Tensor& g) override { return g; }
  std::string name() const override { return "unlowered_test_module"; }
};

TEST(CompiledNet, RejectsUnsupportedLayers) {
  nn::Sequential seq;
  seq.emplace<UnloweredModule>();
  seq.set_training(false);
  EXPECT_THROW(serve::CompiledNet::compile(seq), util::CheckError);
}

// --- conv lowering: CSR over im2col patches -----------------------------

/// Conv chains across stride/padding/bias/BN variants must reproduce the
/// eval-mode dense forward.
TEST(CompiledNet, ConvChainMatchesDenseEval) {
  struct Variant {
    std::size_t kernel, stride, padding;
    bool bias, batch_norm;
  };
  const Variant variants[] = {
      {3, 1, 1, false, false}, {3, 2, 0, true, false},
      {5, 2, 2, false, true},  {1, 1, 0, true, true},
  };
  for (const Variant& v : variants) {
    util::Rng rng(7 + v.kernel + v.stride);
    nn::Sequential seq;
    seq.emplace<nn::Conv2d>(3, 6, v.kernel, v.stride, v.padding, rng,
                            v.bias);
    if (v.batch_norm) seq.emplace<nn::BatchNorm2d>(6);
    seq.emplace<nn::ReLU>();
    seq.emplace<nn::Conv2d>(6, 4, 3, 1, 1, rng, v.bias);
    if (v.batch_norm) seq.emplace<nn::BatchNorm2d>(4);
    seq.emplace<nn::GlobalAvgPool>();
    // Move BN running stats off init before eval.
    seq.forward(random_tensor(tensor::Shape({6, 3, 11, 11}), 80));
    seq.set_training(false);

    const auto net = serve::CompiledNet::compile(seq);
    const auto x = random_tensor(tensor::Shape({3, 3, 11, 11}), 81);
    EXPECT_TRUE(net.forward(x).allclose(seq.forward(x), 1e-4f))
        << "k" << v.kernel << " s" << v.stride << " p" << v.padding
        << " bias=" << v.bias << " bn=" << v.batch_norm;
    // Eval-BN folds into the conv CSR: op count is unchanged by BN.
    EXPECT_EQ(net.num_ops(), 4u);
    EXPECT_EQ(net.num_sparse_ops(), 2u);
  }
}

TEST(CompiledNet, ConvIntraOpThreadsAreBitIdentical) {
  util::Rng rng(15);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(3, 6, 3, 1, 1, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Conv2d>(6, 4, 3, 2, 1, rng);
  seq.set_training(false);

  const auto serial = serve::CompiledNet::compile(seq);
  serve::CompileOptions threaded_opts;
  threaded_opts.intra_op_threads = 3;
  const auto threaded = serve::CompiledNet::compile(seq, nullptr,
                                                    threaded_opts);
  // Image-parallel conv gives every output element exactly one writer, so
  // any thread count must produce identical bits (batch 7 does not divide
  // evenly across 3 workers on purpose).
  const auto x = random_tensor(tensor::Shape({7, 3, 9, 9}), 16);
  EXPECT_TRUE(threaded.forward(x).equals(serial.forward(x)));
}

TEST(CompiledNet, ConvMaskedTopologyDeploysFaithfully) {
  util::Rng rng(12);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::GlobalAvgPool>();
  seq.emplace<nn::Linear>(8, 5, rng);
  sparse::SparseModel smodel(seq, 0.8, sparse::DistributionKind::kErk, rng);
  seq.set_training(false);

  const auto net = serve::CompiledNet::compile(seq, &smodel);
  // Conv nnz now counts toward the model totals (not just Linear).
  EXPECT_EQ(net.total_nnz(), smodel.total_active());
  EXPECT_EQ(net.total_weights(), smodel.total_weights());
  const auto x = random_tensor(tensor::Shape({2, 3, 7, 7}), 13);
  EXPECT_TRUE(net.forward(x).allclose(seq.forward(x), 1e-4f));
}

TEST(CompiledNet, FlopsPerSampleCountsConvNnz) {
  util::Rng rng(19);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
  sparse::SparseModel smodel(seq, 0.5, sparse::DistributionKind::kUniform,
                             rng);
  seq.set_training(false);
  const auto net = serve::CompiledNet::compile(seq, &smodel);

  // 6x6 input, k3 s1 p1 → 6x6 output positions; 2 FLOPs per stored weight
  // per position.
  const tensor::Shape sample({3, 6, 6});
  EXPECT_DOUBLE_EQ(net.flops_per_sample(sample),
                   sparse::conv_nnz_flops(net.total_nnz(), 6, 6));
  EXPECT_DOUBLE_EQ(net.dense_flops_per_sample(sample),
                   sparse::conv_nnz_flops(8 * 3 * 3 * 3, 6, 6));
  EXPECT_LT(net.flops_per_sample(sample),
            net.dense_flops_per_sample(sample));
}

TEST(CompiledNet, VggCompilesAndMatchesDenseEval) {
  models::VggConfig cfg;
  cfg.depth = 11;
  cfg.image_size = 8;
  cfg.num_classes = 5;
  cfg.width_multiplier = 0.08;  // tiny stages, full topology
  util::Rng rng(3);
  models::Vgg vgg(cfg, rng);
  sparse::SparseModel smodel(vgg, 0.9, sparse::DistributionKind::kErk, rng);
  vgg.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 90));
  vgg.set_training(false);

  const auto net = serve::CompiledNet::compile(vgg, &smodel);
  EXPECT_EQ(net.total_nnz(), smodel.total_active());
  EXPECT_EQ(net.num_residual_joins(), 0u);
  const auto x = random_tensor(tensor::Shape({3, 3, 8, 8}), 91);
  EXPECT_TRUE(net.forward(x).allclose(vgg.forward(x), 1e-4f));
}

// --- residual op-graph --------------------------------------------------

TEST(CompiledNet, ResNetCompilesAndMatchesDenseEval) {
  for (const int depth : {18, 50}) {
    models::ResNetConfig cfg;
    cfg.depth = depth;
    cfg.image_size = 8;
    cfg.num_classes = 4;
    cfg.width_multiplier = 0.07;
    util::Rng rng(4);
    models::ResNet resnet(cfg, rng);
    sparse::SparseModel smodel(resnet, 0.85, sparse::DistributionKind::kErk,
                               rng);
    resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 92));
    resnet.set_training(false);

    const auto net = serve::CompiledNet::compile(resnet, &smodel);
    // One add+ReLU join per residual block: 8 blocks for depth 18, 16 for
    // depth 50 ({3,4,6,3} bottleneck).
    EXPECT_EQ(net.num_residual_joins(), depth == 18 ? 8u : 16u);
    EXPECT_EQ(net.total_nnz(), smodel.total_active());
    const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 93);
    EXPECT_TRUE(net.forward(x).allclose(resnet.forward(x), 1e-4f))
        << "depth " << depth;
  }
}

TEST(ServeCheckpoint, ResNetRoundTripsThroughDisk) {
  const std::string path = "serve_ckpt/serve_resnet_roundtrip.bin";
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;

  util::Rng rng(41);
  models::ResNet resnet(cfg, rng);
  sparse::SparseModel smodel(resnet, 0.85, sparse::DistributionKind::kErk,
                             rng);
  resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 94));
  resnet.set_training(false);

  const auto in_memory = serve::CompiledNet::compile(resnet, &smodel);
  train::save_checkpoint(path, resnet, &smodel);

  // Fresh init, fresh topology — everything must come from the file,
  // including conv masks and BN running statistics.
  util::Rng rng2(77);
  models::ResNet loaded(cfg, rng2);
  sparse::SparseModel loaded_state(loaded, 0.85,
                                   sparse::DistributionKind::kErk, rng2);
  const auto from_disk =
      serve::CompiledNet::from_checkpoint(path, loaded, &loaded_state);

  EXPECT_EQ(from_disk.total_nnz(), in_memory.total_nnz());
  const auto x = random_tensor(tensor::Shape({3, 3, 8, 8}), 95);
  EXPECT_TRUE(from_disk.forward(x).allclose(in_memory.forward(x), 1e-7f));
  EXPECT_TRUE(from_disk.forward(x).allclose(resnet.forward(x), 1e-4f));
}

TEST(Server, ServesConvSamplesBatchedByShape) {
  util::Rng rng(21);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(3, 4, 3, 1, 1, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::GlobalAvgPool>();
  seq.set_training(false);
  const auto net = serve::CompiledNet::compile(seq);

  serve::ServerConfig cfg;
  cfg.num_threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.5;
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({3, 6, 6}), 200 + i)));
  }
  for (int i = 0; i < 8; ++i) {
    const auto x = random_tensor(tensor::Shape({3, 6, 6}), 200 + i);
    const auto expected =
        net.forward(x.reshaped(tensor::Shape({1, 3, 6, 6})));
    EXPECT_TRUE(futures[static_cast<std::size_t>(i)].get().allclose(
        expected.reshaped(tensor::Shape({4})), 1e-6f));
  }
  server.shutdown();
  EXPECT_EQ(server.stats().requests, 8u);
}

TEST(CompiledNet, CloneSharesNoStateAndMatchesBitForBit) {
  CompiledHarness h(0.9, /*batch_norm=*/true);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto replica = net.clone();
  EXPECT_EQ(replica.num_ops(), net.num_ops());
  EXPECT_EQ(replica.total_nnz(), net.total_nnz());
  EXPECT_EQ(replica.input_features(), net.input_features());
  const auto x = random_tensor(tensor::Shape({5, 12}), 61);
  EXPECT_TRUE(replica.forward(x).equals(net.forward(x)));
}

TEST(CompiledNet, ResNetCloneMatchesBitForBit) {
  // Clone must deep-copy the residual op graph (binary joins, shared
  // producers), not just chain nets.
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;
  util::Rng rng(6);
  models::ResNet resnet(cfg, rng);
  resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 96));
  resnet.set_training(false);
  const auto net = serve::CompiledNet::compile(resnet);
  const auto replica = net.clone();
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 97);
  EXPECT_TRUE(replica.forward(x).equals(net.forward(x)));
}

TEST(Server, ShardedAnswersBitIdenticalToSingleShard) {
  CompiledHarness h(0.8);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  // Shard replicas and the per-shape routing must be invisible to
  // clients: the CSR row reduction is batch-independent, so every shard
  // count returns identical bits for the same sample.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    serve::ServerConfig cfg;
    cfg.num_threads = 2;
    cfg.num_shards = shards;
    cfg.max_batch = 4;
    cfg.max_delay_ms = 0.5;
    serve::InferenceServer server(net, cfg);
    std::vector<std::future<tensor::Tensor>> futures;
    for (int i = 0; i < 12; ++i) {
      futures.push_back(
          server.submit(random_tensor(tensor::Shape({12}), 500 + i)));
    }
    for (int i = 0; i < 12; ++i) {
      const auto x = random_tensor(tensor::Shape({12}), 500 + i);
      const auto expected = net.forward(x.reshaped(tensor::Shape({1, 12})));
      EXPECT_TRUE(futures[static_cast<std::size_t>(i)].get().equals(
          expected.reshaped(tensor::Shape({5}))))
          << "shards=" << shards << " request " << i;
    }
    server.shutdown();
    EXPECT_EQ(server.stats().requests, 12u);
  }
}

TEST(Server, ShardStatsSumToAggregateAndRoutingSpreadsLoad) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.num_shards = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.5;
  serve::InferenceServer server(net, cfg);
  EXPECT_EQ(server.num_shards(), 2u);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 700 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  server.shutdown();

  const auto total = server.stats();
  EXPECT_EQ(total.requests, 16u);
  std::size_t sum = 0, batches = 0;
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    const auto ss = server.shard_stats(s);
    sum += ss.requests;
    batches += ss.batches;
    // Round-robin-by-shape: one shape, so the split is exactly even.
    EXPECT_EQ(ss.requests, 8u);
    EXPECT_GE(ss.queue_peak, 1u);
    EXPECT_GE(ss.blocked_ms, 0.0);
  }
  EXPECT_EQ(sum, total.requests);
  EXPECT_EQ(batches, total.batches);
  EXPECT_GE(total.queue_peak, 1u);
  EXPECT_THROW(server.shard_stats(2), util::CheckError);
}

TEST(Server, BackpressureBlockedTimeIsRecorded) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 1;
  cfg.queue_capacity = 1;  // every enqueue beyond the first must wait
  cfg.max_delay_ms = 0.0;
  serve::InferenceServer server(net, cfg);
  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 800 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 32u);
  EXPECT_EQ(stats.queue_peak, 1u);   // capacity bound was respected
  EXPECT_GE(stats.blocked_ms, 0.0);  // stall counter wired through
}

TEST(ServerStats, PercentilesAreInterpolated) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(serve::percentile({}, 0.5), 0.0);
  EXPECT_THROW(serve::percentile(sorted, 1.5), util::CheckError);
}

TEST(ServerStats, SnapshotAndAggregateNeverBlockCounterRecording) {
  // Regression for the documented contract (stats.hpp): counter recording
  // is lock-free, so hammering aggregate()/snapshot() from a reader while
  // workers record concurrently must neither race (this test runs under
  // the TSan CI job) nor lose a count. Latency samples share a brief
  // mutex with the window copy by design; counts must still be exact.
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kBatchesPerWriter = 500;
  serve::ServerStats group_a, group_b;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      serve::ServerStats& target = (w % 2 == 0) ? group_a : group_b;
      while (!go.load()) std::this_thread::yield();
      for (std::size_t i = 0; i < kBatchesPerWriter; ++i) {
        target.record_batch({1.0, 2.0});
        target.record_queue_depth(w * kBatchesPerWriter + i);
        target.record_blocked_ms(0.5);
        target.record_shed();
        if (i % 10 == 0) target.record_swap();
      }
    });
  }
  go.store(true);
  // Reader loop overlapping the writers: every intermediate view must be
  // internally sane (monotonic-ish counts, derived fields finite).
  for (int spin = 0; spin < 200; ++spin) {
    const auto agg = serve::ServerStats::aggregate({&group_a, &group_b});
    EXPECT_GE(agg.requests, agg.batches);  // 2 requests per batch
    EXPECT_GE(agg.blocked_ms, 0.0);
    EXPECT_LE(agg.swap_count, agg.shed_total + 1);  // 1 swap per 10 sheds
    const auto snap = group_a.snapshot();
    EXPECT_LE(snap.requests, kWriters * kBatchesPerWriter * 2);
  }
  for (auto& t : writers) t.join();
  const auto final_agg = serve::ServerStats::aggregate({&group_a, &group_b});
  EXPECT_EQ(final_agg.batches, kWriters * kBatchesPerWriter);
  EXPECT_EQ(final_agg.requests, kWriters * kBatchesPerWriter * 2);
  EXPECT_EQ(final_agg.queue_peak, kWriters * kBatchesPerWriter - 1);
  EXPECT_NEAR(final_agg.blocked_ms,
              0.5 * static_cast<double>(kWriters * kBatchesPerWriter), 1e-6);
  EXPECT_GT(final_agg.latency_p50_ms, 0.0);
  EXPECT_EQ(final_agg.shed_total, kWriters * kBatchesPerWriter);
  EXPECT_EQ(final_agg.swap_count, kWriters * (kBatchesPerWriter / 10));
}

TEST(Server, FlushOnFullBatch) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 60000.0;  // never flush on time — only on fill
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 40 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.batches, 1u);  // one full micro-batch, no timeout needed
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 4.0);
}

TEST(Server, FlushOnTimeout) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 1;
  cfg.max_batch = 64;       // far more than we submit
  cfg.max_delay_ms = 5.0;   // so only the deadline can flush
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 50 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);  // must not hang
  server.shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(Server, ConcurrentClientsGetTheirOwnAnswers) {
  CompiledHarness h(0.8);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 4;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.5;
  serve::InferenceServer server(net, cfg);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 20;
  std::atomic<std::size_t> mismatches{0};

  auto client = [&](std::size_t id) {
    for (std::size_t i = 0; i < kPerClient; ++i) {
      const auto x =
          random_tensor(tensor::Shape({12}), 1000 + id * kPerClient + i);
      // Reference through the same compiled net, single-threaded: the CSR
      // row reduction order is batch-independent, so results must agree to
      // float round-off regardless of how requests get batched.
      const auto expected =
          net.forward(x.reshaped(tensor::Shape({1, 12})));
      const auto got = server.submit(x).get();
      if (got.numel() != 5 ||
          !got.allclose(expected.reshaped(tensor::Shape({5})), 1e-6f)) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (auto& t : clients) t.join();
  server.shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(server.stats().requests, kClients * kPerClient);
}

TEST(Server, ShutdownDrainsPendingRequests) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::ServerConfig cfg;
  cfg.num_threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 10000.0;  // only shutdown can flush the tail
  serve::InferenceServer server(net, cfg);

  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 11; ++i) {  // not a multiple of max_batch
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 60 + i)));
  }
  server.shutdown();
  for (auto& f : futures) EXPECT_EQ(f.get().numel(), 5u);
  EXPECT_EQ(server.stats().requests, 11u);
  EXPECT_THROW(server.submit(random_tensor(tensor::Shape({12}), 99)),
               util::CheckError);
}

TEST(Server, RejectsWrongFeatureCount) {
  CompiledHarness h(0.5);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::InferenceServer server(net, {});
  EXPECT_THROW(server.submit(random_tensor(tensor::Shape({7}), 1)),
               util::CheckError);
  EXPECT_THROW(server.submit(random_tensor(tensor::Shape({2, 12}), 1)),
               util::CheckError);
}

// --- checkpoint → CompiledNet round trip -------------------------------

TEST(ServeCheckpoint, TrainedMlpRoundTripsThroughDisk) {
  // Own scratch dir: gap_checkpoint_test remove_all()s test_ckpt/, and
  // ctest -j runs both binaries concurrently in the same cwd.
  const std::string path = "serve_ckpt/serve_roundtrip.bin";
  models::MlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = {16};
  cfg.out_features = 4;

  util::Rng rng(31);
  models::Mlp model(cfg, rng);
  sparse::SparseModel smodel(model, 0.8, sparse::DistributionKind::kErk,
                             rng);
  optim::Sgd::Config scfg;
  scfg.lr = 0.05;
  optim::Sgd optimizer(model.parameters(), scfg);

  methods::DstEngineConfig ecfg;
  ecfg.schedule.delta_t = 5;
  ecfg.schedule.total_iterations = 40;
  ecfg.schedule.initial_drop_fraction = 0.3;
  ecfg.drop = std::make_unique<methods::MagnitudeDrop>();
  ecfg.grow = std::make_unique<methods::DstEeGrow>(methods::DstEeGrow::Config{});
  methods::DstEngine engine(smodel, optimizer, std::move(ecfg),
                            rng.fork("engine"));

  // A real (if tiny) DST training loop on random data.
  nn::SoftmaxCrossEntropy loss;
  for (std::size_t it = 1; it <= 40; ++it) {
    const auto x = random_tensor(tensor::Shape({16, 8}), 200 + it);
    std::vector<std::size_t> labels(16);
    for (std::size_t i = 0; i < 16; ++i) labels[i] = (it + i) % 4;
    model.zero_grad();
    loss.forward(model.forward(x), labels);
    model.backward(loss.backward());
    engine.maybe_update(it, 0.05);
    smodel.apply_masks_to_grads();
    optimizer.step();
    smodel.apply_masks_to_values();
  }
  model.set_training(false);

  const auto in_memory = serve::CompiledNet::compile(model, &smodel);
  train::save_checkpoint(path, model, &smodel);

  // Fresh architecture, different init, different topology — everything
  // must come from the file.
  util::Rng rng2(99);
  models::Mlp loaded(cfg, rng2);
  sparse::SparseModel loaded_state(loaded, 0.8,
                                   sparse::DistributionKind::kErk, rng2);
  const auto from_disk = serve::CompiledNet::from_checkpoint(
      path, loaded, &loaded_state);

  EXPECT_EQ(from_disk.total_nnz(), in_memory.total_nnz());
  const auto x = random_tensor(tensor::Shape({10, 8}), 77);
  const auto expected = in_memory.forward(x);
  const auto actual = from_disk.forward(x);
  EXPECT_TRUE(actual.allclose(expected, 1e-7f));  // identical logits
  // And both still match the eval-mode dense model.
  EXPECT_TRUE(actual.allclose(model.forward(x), 1e-4f));
}

TEST(ServeCheckpoint, BatchNormRunningStatsSurviveTheRoundTrip) {
  // Regression: checkpoint v1 persisted only parameters, so gamma/beta
  // came back but running mean/var stayed at init and a reloaded BN model
  // silently served the wrong affine constants.
  const std::string path = "serve_ckpt/serve_bn_roundtrip.bin";
  CompiledHarness h(0.8, /*batch_norm=*/true);  // ctor moves running stats
  const auto in_memory = serve::CompiledNet::compile(h.model, &h.smodel);
  train::save_checkpoint(path, h.model, &h.smodel);

  CompiledHarness loaded(0.8, /*batch_norm=*/true, 0.0, /*seed=*/123);
  const auto from_disk =
      serve::CompiledNet::from_checkpoint(path, loaded.model,
                                          &loaded.smodel);

  // The loaded module tree itself must carry the saved running stats
  // (two BN layers × {mean, var}).
  const auto saved = h.model.state_buffers();
  const auto restored = loaded.model.state_buffers();
  ASSERT_EQ(saved.size(), 4u);
  ASSERT_EQ(restored.size(), 4u);
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_TRUE(restored[i]->allclose(*saved[i], 1e-7f));
  }
  const auto x = random_tensor(tensor::Shape({9, 12}), 88);
  EXPECT_TRUE(from_disk.forward(x).allclose(in_memory.forward(x), 1e-7f));
  EXPECT_TRUE(from_disk.forward(x).allclose(h.model.forward(x), 1e-4f));
}

// --- Plan / pass pipeline ----------------------------------------------

std::size_t count_kind(const serve::Plan& plan, serve::PlanOpKind kind) {
  std::size_t n = 0;
  for (const serve::PlanOp& op : plan.ops) {
    if (op.kind == kind) ++n;
  }
  return n;
}

TEST(Compiler, DefaultPipelineMatchesFacadeBitForBit) {
  // CompiledNet::compile is a thin facade over Compiler's default
  // pipeline; an explicitly constructed Compiler must produce the same
  // program down to the bits — the equivalence contract of the redesign.
  CompiledHarness h(0.85, /*batch_norm=*/true, /*dropout=*/0.25);
  const auto facade = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto staged = serve::Compiler().compile(h.model, &h.smodel);
  EXPECT_EQ(staged.num_ops(), facade.num_ops());
  EXPECT_EQ(staged.num_elided(), facade.num_elided());
  EXPECT_EQ(staged.total_nnz(), facade.total_nnz());
  const auto x = random_tensor(tensor::Shape({6, 12}), 301);
  EXPECT_TRUE(staged.forward(x).equals(facade.forward(x)));
  EXPECT_TRUE(staged.forward(x).allclose(h.model.forward(x), 1e-4f));
}

TEST(Compiler, LoweringEmitsOneNodePerModule) {
  // Lowering takes no optimization decisions: dropout and batch-norm
  // appear as their own nodes until the passes rewrite them.
  CompiledHarness h(0.8, /*batch_norm=*/true, /*dropout=*/0.25);
  serve::Plan raw = serve::lower(h.model, &h.smodel);
  EXPECT_EQ(count_kind(raw, serve::PlanOpKind::kDropout), 2u);
  EXPECT_EQ(count_kind(raw, serve::PlanOpKind::kScaleShift), 2u);
  EXPECT_EQ(count_kind(raw, serve::PlanOpKind::kSpmm), 3u);
  EXPECT_EQ(raw.elided, 0u);
  EXPECT_TRUE(raw.release_after.empty());
}

TEST(Passes, ElideDropoutRemovesEvalIdentityNodes) {
  CompiledHarness h(0.8, /*batch_norm=*/false, /*dropout=*/0.25);
  serve::Plan plan = serve::lower(h.model, &h.smodel);
  const std::size_t dropouts =
      count_kind(plan, serve::PlanOpKind::kDropout);
  ASSERT_GT(dropouts, 0u);
  const std::size_t before = plan.size();
  serve::ElideDropout().run(plan);
  EXPECT_EQ(count_kind(plan, serve::PlanOpKind::kDropout), 0u);
  EXPECT_EQ(plan.size(), before - dropouts);
  EXPECT_EQ(plan.elided, dropouts);
}

TEST(Passes, FoldBatchNormRequiresAdjacentSingleConsumerCsr) {
  util::Rng rng(91);
  nn::Sequential foldable;
  foldable.emplace<nn::Linear>(6, 4, rng);
  foldable.emplace<nn::BatchNorm1d>(4);
  nn::Sequential unfoldable;  // ReLU between Linear and BN blocks the fold
  unfoldable.emplace<nn::Linear>(6, 4, rng);
  unfoldable.emplace<nn::ReLU>();
  unfoldable.emplace<nn::BatchNorm1d>(4);
  for (nn::Sequential* seq : {&foldable, &unfoldable}) {
    seq->forward(random_tensor(tensor::Shape({16, 6}), 92));
    seq->set_training(false);
  }

  serve::Plan unfolded = serve::lower(foldable);
  serve::Plan fold_plan = unfolded;  // plans are value types
  serve::FoldBatchNorm().run(fold_plan);
  EXPECT_EQ(fold_plan.size(), 1u);
  EXPECT_TRUE(fold_plan.ops[0].folded_bn);
  EXPECT_TRUE(fold_plan.ops[0].has_bias);
  // The fold must not reach through the shared weights into the copy:
  // binding the untouched plan still reproduces the dense forward.
  {
    EXPECT_EQ(unfolded.size(), 2u);
    const auto x = random_tensor(tensor::Shape({4, 6}), 96);
    const auto net =
        serve::CompiledNet::bind(std::move(unfolded), serve::CompileOptions{});
    EXPECT_TRUE(net.forward(x).allclose(foldable.forward(x), 1e-4f));
  }

  serve::Plan keep_plan = serve::lower(unfoldable);
  const std::size_t before = keep_plan.size();
  serve::FoldBatchNorm().run(keep_plan);
  EXPECT_EQ(keep_plan.size(), before);  // nothing adjacent to fold into
  EXPECT_EQ(count_kind(keep_plan, serve::PlanOpKind::kScaleShift), 1u);

  // Both variants still reproduce the dense eval forward when bound.
  const auto x = random_tensor(tensor::Shape({5, 6}), 93);
  EXPECT_TRUE(serve::Compiler()
                  .compile(foldable)
                  .forward(x)
                  .allclose(foldable.forward(x), 1e-4f));
  EXPECT_TRUE(serve::Compiler()
                  .compile(unfoldable)
                  .forward(x)
                  .allclose(unfoldable.forward(x), 1e-4f));
}

TEST(Passes, FreeAfterLastUseReleasesEachIntermediateOnce) {
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;
  util::Rng rng(94);
  models::ResNet resnet(cfg, rng);
  resnet.forward(random_tensor(tensor::Shape({2, 3, 8, 8}), 95));
  resnet.set_training(false);

  serve::Compiler compiler;
  serve::Plan plan = compiler.plan(resnet);
  ASSERT_EQ(plan.release_after.size(), plan.size());
  std::vector<std::size_t> released_at(plan.size(),
                                       serve::Plan::kInputId);
  for (std::size_t i = 0; i < plan.release_after.size(); ++i) {
    for (const std::size_t id : plan.release_after[i]) {
      EXPECT_EQ(released_at[id], serve::Plan::kInputId)
          << "node " << id << " released twice";
      released_at[id] = i;
    }
  }
  // Every intermediate except the output dies exactly once, no earlier
  // than its last consumer.
  const std::vector<std::size_t> uses = plan.use_counts();
  for (std::size_t id = 0; id + 1 < plan.size(); ++id) {
    if (uses[id] == 0) continue;
    ASSERT_NE(released_at[id], serve::Plan::kInputId) << "node " << id;
    for (std::size_t i = released_at[id] + 1; i < plan.size(); ++i) {
      for (const std::size_t in : plan.ops[i].inputs) {
        EXPECT_NE(in, id) << "node " << id << " read after release";
      }
    }
  }
}

TEST(Compiler, ClearPassesStillServesCorrectAnswers) {
  // A raw lowering pipeline (no elision, no folding, no release lists)
  // binds to a larger but equivalent program.
  CompiledHarness h(0.8, /*batch_norm=*/true, /*dropout=*/0.25);
  serve::Compiler raw;
  raw.clear_passes();
  const auto net = raw.compile(h.model, &h.smodel);
  const auto standard = serve::CompiledNet::compile(h.model, &h.smodel);
  EXPECT_GT(net.num_ops(), standard.num_ops());
  EXPECT_EQ(net.num_elided(), 0u);
  const auto x = random_tensor(tensor::Shape({4, 12}), 302);
  EXPECT_TRUE(net.forward(x).allclose(h.model.forward(x), 1e-4f));
}

// --- PartitionRows ------------------------------------------------------

serve::Compiler partition_compiler(std::size_t ways,
                                   tensor::Shape sample_shape,
                                   double threshold = 0.0) {
  serve::Compiler compiler;
  serve::PartitionRowsOptions popts;
  popts.ways = ways;
  popts.min_cost_share = threshold;
  popts.sample_shape = std::move(sample_shape);
  compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
  return compiler;
}

TEST(PartitionRows, MlpMatchesUnpartitionedForK2AndK4) {
  CompiledHarness h(0.9, /*batch_norm=*/true);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 401);
  const auto expected = baseline.forward(x);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto net = partition_compiler(k, tensor::Shape({12}))
                         .compile(h.model, &h.smodel);
    EXPECT_GT(net.num_partitioned_ops(), 0u) << "k=" << k;
    EXPECT_EQ(net.num_parallel_groups(), net.num_partitioned_ops());
    EXPECT_EQ(net.total_nnz(), baseline.total_nnz());
    // Submit-time input validation survives partitioning the first
    // linear: the leading row slice still fixes the feature count.
    EXPECT_EQ(net.input_features(), 12u);
    // Row slicing preserves every per-row reduction order: bit-identical,
    // comfortably inside the 1e-6 contract.
    const auto got = net.forward(x);
    EXPECT_TRUE(got.allclose(expected, 1e-6f)) << "k=" << k;
    EXPECT_TRUE(got.equals(expected)) << "k=" << k;
  }
}

TEST(PartitionRows, VggMatchesUnpartitionedForK2AndK4) {
  models::VggConfig cfg;
  cfg.depth = 11;
  cfg.image_size = 8;
  cfg.num_classes = 5;
  cfg.width_multiplier = 0.08;
  util::Rng rng(402);
  models::Vgg vgg(cfg, rng);
  sparse::SparseModel smodel(vgg, 0.9, sparse::DistributionKind::kErk, rng);
  vgg.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 403));
  vgg.set_training(false);

  const auto baseline = serve::CompiledNet::compile(vgg, &smodel);
  const auto x = random_tensor(tensor::Shape({3, 3, 8, 8}), 404);
  const auto expected = baseline.forward(x);
  const tensor::Shape sample({3, 8, 8});
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto net = partition_compiler(k, sample).compile(vgg, &smodel);
    EXPECT_GT(net.num_partitioned_ops(), 0u) << "k=" << k;
    const auto got = net.forward(x);
    EXPECT_TRUE(got.allclose(expected, 1e-6f)) << "k=" << k;
    EXPECT_TRUE(got.equals(expected)) << "k=" << k;
  }
}

TEST(PartitionRows, ResNetMatchesUnpartitionedThroughCheckpoint) {
  // The full loop: train-shaped artifact → disk → staged compiler with
  // PartitionRows → same answers as the unpartitioned facade.
  const std::string path = "serve_ckpt/partition_resnet_roundtrip.bin";
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;
  util::Rng rng(405);
  models::ResNet resnet(cfg, rng);
  sparse::SparseModel smodel(resnet, 0.85, sparse::DistributionKind::kErk,
                             rng);
  resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 406));
  resnet.set_training(false);
  const auto baseline = serve::CompiledNet::compile(resnet, &smodel);
  train::save_checkpoint(path, resnet, &smodel);

  util::Rng rng2(407);
  models::ResNet loaded(cfg, rng2);
  sparse::SparseModel loaded_state(loaded, 0.85,
                                   sparse::DistributionKind::kErk, rng2);
  train::load_checkpoint(path, loaded, &loaded_state);
  const tensor::Shape sample({3, 8, 8});
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 408);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto net =
        partition_compiler(k, sample).compile(loaded, &loaded_state);
    EXPECT_GT(net.num_partitioned_ops(), 0u) << "k=" << k;
    EXPECT_TRUE(net.forward(x).allclose(baseline.forward(x), 1e-6f))
        << "k=" << k;
  }
}

TEST(PartitionRows, PartitionedCloneSharesNoStateAndMatches) {
  CompiledHarness h(0.9);
  const auto net =
      partition_compiler(3, tensor::Shape({12})).compile(h.model, &h.smodel);
  ASSERT_GT(net.num_parallel_groups(), 0u);
  const auto replica = net.clone();
  EXPECT_EQ(replica.num_ops(), net.num_ops());
  EXPECT_EQ(replica.num_parallel_groups(), net.num_parallel_groups());
  const auto x = random_tensor(tensor::Shape({4, 12}), 409);
  EXPECT_TRUE(replica.forward(x).equals(net.forward(x)));
}

TEST(PartitionRows, GroupsRunIdenticallyAcrossPools) {
  // The slice-group fan-out must be invisible to results: a zero-worker
  // pool (inline), a private 3-worker pool, and the process default all
  // produce the same bits.
  CompiledHarness h(0.9);
  const auto x = random_tensor(tensor::Shape({3, 12}), 410);
  tensor::Tensor expected;
  bool have_expected = false;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
    runtime::Pool pool(workers);
    serve::CompileOptions opts;
    opts.intra_op_pool = &pool;
    serve::Compiler compiler(opts);
    serve::PartitionRowsOptions popts;
    popts.ways = 2;
    popts.min_cost_share = 0.0;
    popts.sample_shape = tensor::Shape({12});
    compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
    const auto net = compiler.compile(h.model, &h.smodel);
    const auto got = net.forward(x);
    if (!have_expected) {
      expected = got;
      have_expected = true;
    } else {
      EXPECT_TRUE(got.equals(expected)) << "workers=" << workers;
    }
  }
  const auto default_pool_net =
      partition_compiler(2, tensor::Shape({12})).compile(h.model, &h.smodel);
  EXPECT_TRUE(default_pool_net.forward(x).equals(expected));
}

TEST(PartitionRows, ThresholdSkipsLightNodes) {
  // At a 90% share threshold nothing qualifies: the pass is a no-op and
  // the program stays byte-for-byte the default pipeline's.
  CompiledHarness h(0.8);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto net = partition_compiler(2, tensor::Shape({12}), 0.9)
                       .compile(h.model, &h.smodel);
  EXPECT_EQ(net.num_partitioned_ops(), 0u);
  EXPECT_EQ(net.num_ops(), baseline.num_ops());
  const auto x = random_tensor(tensor::Shape({6, 12}), 411);
  EXPECT_TRUE(net.forward(x).equals(baseline.forward(x)));
}

TEST(Plan, DumpAnnotatesCostsAndPartitions) {
  CompiledHarness h(0.9, /*batch_norm=*/true);
  auto compiler = partition_compiler(2, tensor::Shape({12}));
  serve::Plan plan = compiler.plan(h.model, &h.smodel);
  plan.validate();
  const tensor::Shape sample({12});
  const std::string dump = plan.dump(&sample);
  EXPECT_NE(dump.find("row_slice"), std::string::npos);
  EXPECT_NE(dump.find("concat"), std::string::npos);
  EXPECT_NE(dump.find("group"), std::string::npos);
  EXPECT_NE(dump.find("%)"), std::string::npos);  // cost shares
  EXPECT_NE(dump.find("partitioned"), std::string::npos);
  // The plan is still bindable after inspection.
  const auto net = compiler.bind(std::move(plan));
  EXPECT_GT(net.num_parallel_groups(), 0u);
}

// ---------------------------------------------------------------------
// Checkpoint delta format v3 + the plan-level ApplyDelta patch path.

/// One faked DST step touching ONLY `layer_idx`: flip one mask position
/// each way and jitter a few surviving values. Confining the edit to a
/// single layer is what lets the tests assert the patch rebuilds just
/// that layer's plan node.
void perturb_layer(sparse::SparseModel& state, std::size_t layer_idx) {
  sparse::MaskedParameter& layer = state.layer(layer_idx);
  const std::vector<std::size_t> active = layer.mask().active_indices();
  const std::vector<std::size_t> inactive = layer.mask().inactive_indices();
  ASSERT_GE(active.size(), 4u);
  ASSERT_GE(inactive.size(), 1u);
  layer.mask().deactivate(active[0]);
  layer.mask().activate(inactive[0]);
  layer.param().value[inactive[0]] = 0.125f;
  for (std::size_t k = 1; k < 4; ++k) {
    layer.param().value[active[k]] += 0.25f * static_cast<float>(k);
  }
  layer.apply_mask_to_value();
}

TEST(Delta, MlpPatchBitIdenticalToFullRecompileAndSharesUntouched) {
  CompiledHarness base(0.9, false, 0.0, 11);
  serve::Compiler compiler;
  serve::Plan base_plan = compiler.plan(base.model, &base.smodel);
  serve::Plan bound = base_plan;
  const auto base_net = compiler.bind(std::move(bound));

  // Identical twin (same seed), advanced one DST step in layer 1 only.
  CompiledHarness next(0.9, false, 0.0, 11);
  perturb_layer(next.smodel, 1);
  const serve::CheckpointDelta delta =
      serve::make_delta(base.model, &base.smodel, next.model, &next.smodel);
  ASSERT_EQ(delta.sparse_layers.size(), 1u);
  EXPECT_EQ(delta.sparse_layers[0].layer, 1u);
  EXPECT_EQ(delta.sparse_layers[0].removed.size(), 1u);
  EXPECT_EQ(delta.sparse_layers[0].added.size(), 1u);
  EXPECT_EQ(delta.sparse_layers[0].changed.size(), 3u);
  EXPECT_TRUE(delta.dense_params.empty());  // biases did not move

  // Disk round trip preserves the delta exactly.
  const std::string path = "serve_ckpt/mlp_step.delta";
  serve::save_delta(path, delta);
  const serve::CheckpointDelta loaded = serve::load_delta(path);
  EXPECT_EQ(loaded.base_hash, delta.base_hash);
  EXPECT_EQ(loaded.result_hash, delta.result_hash);
  ASSERT_EQ(loaded.sparse_layers.size(), 1u);
  EXPECT_EQ(loaded.sparse_layers[0].added, delta.sparse_layers[0].added);
  EXPECT_EQ(loaded.sparse_layers[0].changed,
            delta.sparse_layers[0].changed);

  serve::apply_delta(loaded, base.model, &base.smodel);
  const serve::PlanPatch patch = serve::apply_delta_to_plan(
      base_plan, loaded, base.model, &base.smodel);
  EXPECT_FALSE(patch.needs_full_recompile);
  EXPECT_EQ(patch.total_weight_nodes, 3u);    // 3 Linear layers
  EXPECT_EQ(patch.patched_weight_nodes, 1u);  // only layer 1 rebuilt

  // Untouched nodes keep the base plan's exact matrices (the zero-copy
  // seam clone_shared builds on); the touched node got a fresh one.
  const auto csr_of = [](const serve::Plan& p, std::size_t ordinal) {
    for (const serve::PlanOp& op : p.ops) {
      if (op.kind == serve::PlanOpKind::kSpmm &&
          op.sparse_ordinal == ordinal) {
        return static_cast<const sparse::CsrMatrix*>(op.csr.get());
      }
    }
    return static_cast<const sparse::CsrMatrix*>(nullptr);
  };
  EXPECT_EQ(csr_of(patch.plan, 0), csr_of(base_plan, 0));
  EXPECT_NE(csr_of(patch.plan, 1), csr_of(base_plan, 1));
  EXPECT_EQ(csr_of(patch.plan, 2), csr_of(base_plan, 2));

  // The patched program is BIT-identical to recompiling the updated
  // model from scratch, and serves the perturbed model's answers.
  serve::Plan patched_plan = patch.plan;
  const auto patched_net = compiler.bind(std::move(patched_plan));
  const auto full_net = compiler.compile(base.model, &base.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 77);
  EXPECT_TRUE(patched_net.forward(x).equals(full_net.forward(x)));
  EXPECT_TRUE(patched_net.forward(x).allclose(next.model.forward(x), 1e-4f));
  EXPECT_EQ(patched_net.total_nnz(), base.smodel.total_active());
}

TEST(Delta, PartitionedPlanRepatchesSliceGroupsBitIdentically) {
  CompiledHarness base(0.85, false, 0.0, 13);
  auto compiler = partition_compiler(2, tensor::Shape({12}));
  serve::Plan base_plan = compiler.plan(base.model, &base.smodel);

  CompiledHarness next(0.85, false, 0.0, 13);
  perturb_layer(next.smodel, 0);
  const serve::CheckpointDelta delta =
      serve::make_delta(base.model, &base.smodel, next.model, &next.smodel);

  serve::apply_delta(delta, base.model, &base.smodel);
  const serve::PlanPatch patch = serve::apply_delta_to_plan(
      base_plan, delta, base.model, &base.smodel);
  EXPECT_FALSE(patch.needs_full_recompile);
  EXPECT_EQ(patch.total_weight_nodes, 3u);    // slice groups count once
  EXPECT_EQ(patch.patched_weight_nodes, 1u);  // layer 0's group re-split

  serve::Plan patched_plan = patch.plan;
  const auto patched_net = compiler.bind(std::move(patched_plan));
  const auto full_net = compiler.compile(base.model, &base.smodel);
  const auto x = random_tensor(tensor::Shape({4, 12}), 78);
  EXPECT_TRUE(patched_net.forward(x).equals(full_net.forward(x)));
  EXPECT_GT(patched_net.num_parallel_groups(), 0u);
}

TEST(Delta, ResNetDeltaRefoldsBatchNormThroughCheckpoint) {
  const std::string base_path = "serve_ckpt/delta_resnet_base.bin";
  const std::string delta_path = "serve_ckpt/delta_resnet_step.delta";
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;

  util::Rng rng(51);
  models::ResNet trained(cfg, rng);
  sparse::SparseModel trained_state(trained, 0.85,
                                    sparse::DistributionKind::kErk, rng);
  trained.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 97));
  trained.set_training(false);
  train::save_checkpoint(base_path, trained, &trained_state);

  // "Next" state: the checkpoint plus one DST step on conv layer 2, a
  // batch-norm affine nudge and a running-stat drift — the folded-BN
  // paths a real training step would touch.
  util::Rng rng_next(52);
  models::ResNet next(cfg, rng_next);
  sparse::SparseModel next_state(next, 0.85,
                                 sparse::DistributionKind::kErk, rng_next);
  train::load_checkpoint(base_path, next, &next_state);
  next.set_training(false);
  // ERK leaves the tiniest conv layers fully dense; step the first layer
  // that actually has sparse headroom to flip a position each way.
  std::size_t dst_layer = next_state.num_layers();
  for (std::size_t l = 0; l < next_state.num_layers(); ++l) {
    if (next_state.layer(l).mask().active_indices().size() >= 4 &&
        !next_state.layer(l).mask().inactive_indices().empty()) {
      dst_layer = l;
      break;
    }
  }
  ASSERT_LT(dst_layer, next_state.num_layers());
  perturb_layer(next_state, dst_layer);
  serve::LoweredModules mods = serve::collect_lowered_modules(next);
  ASSERT_GT(mods.bns.size(), 1u);
  const nn::BatchNorm* bn = mods.bns[1];
  for (nn::Parameter* p : next.parameters()) {
    if (p == &bn->gamma()) p->value[0] += 0.05f;
  }
  for (tensor::Tensor* b : next.state_buffers()) {
    if (b == &bn->running_mean()) (*b)[0] += 0.01f;
  }

  // Fresh base from the checkpoint; diff, round-trip, apply, patch.
  util::Rng rng_base(53);
  models::ResNet base(cfg, rng_base);
  sparse::SparseModel base_state(base, 0.85,
                                 sparse::DistributionKind::kErk, rng_base);
  train::load_checkpoint(base_path, base, &base_state);
  base.set_training(false);
  const serve::CheckpointDelta delta =
      serve::make_delta(base, &base_state, next, &next_state);
  EXPECT_FALSE(delta.empty());
  serve::save_delta(delta_path, delta);
  const serve::CheckpointDelta loaded = serve::load_delta(delta_path);

  serve::Compiler compiler;
  serve::Plan base_plan = compiler.plan(base, &base_state);
  serve::apply_delta(loaded, base, &base_state);
  const serve::PlanPatch patch =
      serve::apply_delta_to_plan(base_plan, loaded, base, &base_state);
  EXPECT_FALSE(patch.needs_full_recompile);
  EXPECT_GT(patch.patched_weight_nodes, 0u);
  EXPECT_LT(patch.patched_weight_nodes, patch.total_weight_nodes);

  serve::Plan patched_plan = patch.plan;
  const auto patched_net = compiler.bind(std::move(patched_plan));
  const auto full_net = compiler.compile(base, &base_state);
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 98);
  EXPECT_TRUE(patched_net.forward(x).equals(full_net.forward(x)));
  EXPECT_TRUE(patched_net.forward(x).allclose(next.forward(x), 1e-4f));
}

TEST(Delta, BaseHashMismatchFailsLoudlyAndMutatesNothing) {
  CompiledHarness a(0.9, false, 0.0, 11);
  CompiledHarness b(0.9, false, 0.0, 11);
  perturb_layer(b.smodel, 0);
  const serve::CheckpointDelta delta =
      serve::make_delta(a.model, &a.smodel, b.model, &b.smodel);

  // Wrong base (different seed): rejected up front.
  CompiledHarness other(0.9, false, 0.0, 99);
  const std::uint64_t before =
      serve::model_state_hash(other.model, &other.smodel);
  EXPECT_THROW(serve::apply_delta(delta, other.model, &other.smodel),
               util::CheckError);
  EXPECT_EQ(serve::model_state_hash(other.model, &other.smodel), before);

  // Applying twice: the first moves the state to result_hash, so the
  // second no longer matches the base.
  serve::apply_delta(delta, a.model, &a.smodel);
  EXPECT_EQ(serve::model_state_hash(a.model, &a.smodel), delta.result_hash);
  EXPECT_THROW(serve::apply_delta(delta, a.model, &a.smodel),
               util::CheckError);
}

TEST(Delta, LoadersRejectEachOthersFormats) {
  CompiledHarness a(0.9, false, 0.0, 11);
  CompiledHarness b(0.9, false, 0.0, 11);
  perturb_layer(b.smodel, 0);
  const serve::CheckpointDelta delta =
      serve::make_delta(a.model, &a.smodel, b.model, &b.smodel);

  const std::string full_path = "serve_ckpt/reject_full.bin";
  const std::string delta_path = "serve_ckpt/reject_step.delta";
  train::save_checkpoint(full_path, a.model, &a.smodel);
  serve::save_delta(delta_path, delta);

  // A full checkpoint is not a delta, and vice versa — both loaders
  // reject the other's file with a pointer at the right entry point.
  EXPECT_THROW(serve::load_delta(full_path), util::CheckError);
  EXPECT_THROW(train::load_checkpoint(delta_path, a.model, &a.smodel),
               util::CheckError);
}

// --- FuseEpilogue + the named pass registry -----------------------------

/// The default pipeline with FuseEpilogue slotted before the release-list
/// pass — the spec the fusion tests (and the bench sweep) run under.
constexpr const char* kFusedSpec =
    "elide-dropout,fold-bn,fuse-epilogue,free-after-last-use";

serve::Compiler fused_compiler() {
  serve::Compiler compiler;
  compiler.pipeline_from_spec(kFusedSpec);
  return compiler;
}

/// Fusion composed with PartitionRows (threshold 0 so every CSR node
/// splits): the fused epilogues must propagate onto the row slices.
serve::Compiler fused_partition_compiler(std::size_t ways,
                                         tensor::Shape sample_shape) {
  serve::CompileOptions opts;
  opts.sample_shape = std::move(sample_shape);
  serve::Compiler compiler(opts);
  compiler.pipeline_from_spec(
      "elide-dropout,fold-bn,fuse-epilogue,partition-rows:" +
      std::to_string(ways) + ":0,free-after-last-use");
  return compiler;
}

TEST(FuseEpilogue, MlpMatchesUnfusedThroughCheckpoint) {
  CompiledHarness h(0.9, /*batch_norm=*/true, /*dropout=*/0.25);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto fused = fused_compiler().compile(h.model, &h.smodel);
  // Both hidden ReLUs are absorbed into their spmm producers; the head
  // has no activation and stays plain.
  EXPECT_EQ(fused.num_fused_ops(), 2u);
  EXPECT_EQ(fused.num_ops(), baseline.num_ops() - 2);
  EXPECT_EQ(fused.total_nnz(), baseline.total_nnz());
  const auto x = random_tensor(tensor::Shape({6, 12}), 501);
  EXPECT_TRUE(fused.forward(x).equals(baseline.forward(x)));
  EXPECT_TRUE(fused.forward(x).allclose(h.model.forward(x), 1e-4f));

  // And through a disk round trip: serving the checkpoint fused still
  // reproduces the unfused program bit-for-bit.
  const std::string path = "serve_ckpt/fusion_mlp_roundtrip.bin";
  train::save_checkpoint(path, h.model, &h.smodel);
  CompiledHarness loaded(0.9, /*batch_norm=*/true, /*dropout=*/0.25, 99);
  train::load_checkpoint(path, loaded.model, &loaded.smodel);
  const auto fused_loaded =
      fused_compiler().compile(loaded.model, &loaded.smodel);
  EXPECT_TRUE(fused_loaded.forward(x).equals(baseline.forward(x)));
}

TEST(FuseEpilogue, Vgg19MatchesUnfusedThroughCheckpoint) {
  const std::string path = "serve_ckpt/fusion_vgg19_roundtrip.bin";
  models::VggConfig cfg;
  cfg.depth = 19;
  cfg.image_size = 8;
  cfg.num_classes = 5;
  cfg.width_multiplier = 0.08;
  util::Rng rng(502);
  models::Vgg vgg(cfg, rng);
  sparse::SparseModel smodel(vgg, 0.9, sparse::DistributionKind::kErk, rng);
  vgg.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 503));
  vgg.set_training(false);
  train::save_checkpoint(path, vgg, &smodel);

  util::Rng rng2(504);
  models::Vgg loaded(cfg, rng2);
  sparse::SparseModel loaded_state(loaded, 0.9,
                                   sparse::DistributionKind::kErk, rng2);
  train::load_checkpoint(path, loaded, &loaded_state);
  loaded.set_training(false);
  const auto baseline = serve::CompiledNet::compile(loaded, &loaded_state);
  const auto fused = fused_compiler().compile(loaded, &loaded_state);
  EXPECT_GT(fused.num_fused_ops(), 0u);
  EXPECT_LT(fused.num_ops(), baseline.num_ops());
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 505);
  EXPECT_TRUE(fused.forward(x).equals(baseline.forward(x)));
}

TEST(FuseEpilogue, ResNet18FusesResidualAddsBitIdentically) {
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;
  util::Rng rng(506);
  models::ResNet resnet(cfg, rng);
  sparse::SparseModel smodel(resnet, 0.85, sparse::DistributionKind::kErk,
                             rng);
  resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 507));
  resnet.set_training(false);

  // Plan-level: the add+ReLU joins are absorbed into CSR epilogues.
  serve::Plan plain = serve::Compiler().plan(resnet, &smodel);
  serve::Plan fused_plan = fused_compiler().plan(resnet, &smodel);
  EXPECT_GT(fused_plan.fused_ops, 0u);
  EXPECT_LT(count_kind(fused_plan, serve::PlanOpKind::kAdd),
            count_kind(plain, serve::PlanOpKind::kAdd));
  EXPECT_LT(count_kind(fused_plan, serve::PlanOpKind::kActivation),
            count_kind(plain, serve::PlanOpKind::kActivation));

  const auto baseline = serve::CompiledNet::compile(resnet, &smodel);
  const auto fused = fused_compiler().compile(resnet, &smodel);
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 508);
  const auto expected = baseline.forward(x);
  // IEEE float addition commutes bitwise, so fusing the add into either
  // operand's producer preserves exact bits.
  EXPECT_TRUE(fused.forward(x).equals(expected));

  // Fused + partitioned: the residual epilogue rides onto the row slices
  // (per-slice residual add inside the concat group).
  const tensor::Shape sample({3, 8, 8});
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto net =
        fused_partition_compiler(k, sample).compile(resnet, &smodel);
    EXPECT_GT(net.num_fused_ops(), 0u) << "k=" << k;
    EXPECT_GT(net.num_partitioned_ops(), 0u) << "k=" << k;
    EXPECT_TRUE(net.forward(x).equals(expected)) << "k=" << k;
  }
}

TEST(FuseEpilogue, FusedPlusPartitionedMlpMatchesForK2AndK4) {
  CompiledHarness h(0.9, /*batch_norm=*/true);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 509);
  const auto expected = baseline.forward(x);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto net = fused_partition_compiler(k, tensor::Shape({12}))
                         .compile(h.model, &h.smodel);
    EXPECT_GT(net.num_fused_ops(), 0u) << "k=" << k;
    EXPECT_GT(net.num_partitioned_ops(), 0u) << "k=" << k;
    EXPECT_EQ(net.total_nnz(), baseline.total_nnz());
    EXPECT_TRUE(net.forward(x).equals(expected)) << "k=" << k;
  }
}

TEST(FuseEpilogue, PostFusionDeltaPatchMatchesFullRecompile) {
  CompiledHarness base(0.9, false, 0.0, 17);
  auto compiler = fused_compiler();
  serve::Plan base_plan = compiler.plan(base.model, &base.smodel);
  ASSERT_GT(base_plan.fused_ops, 0u);

  CompiledHarness next(0.9, false, 0.0, 17);
  perturb_layer(next.smodel, 1);
  const serve::CheckpointDelta delta =
      serve::make_delta(base.model, &base.smodel, next.model, &next.smodel);
  serve::apply_delta(delta, base.model, &base.smodel);
  const serve::PlanPatch patch = serve::apply_delta_to_plan(
      base_plan, delta, base.model, &base.smodel);
  EXPECT_FALSE(patch.needs_full_recompile);
  EXPECT_EQ(patch.patched_weight_nodes, 1u);
  // Fused nodes keep their provenance ordinals AND their epilogues: the
  // patch rebuilds only weights, never the fusion annotations.
  EXPECT_EQ(patch.plan.fused_ops, base_plan.fused_ops);

  serve::Plan patched_plan = patch.plan;
  const auto patched_net = compiler.bind(std::move(patched_plan));
  const auto full_net = compiler.compile(base.model, &base.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 510);
  EXPECT_TRUE(patched_net.forward(x).equals(full_net.forward(x)));
  EXPECT_TRUE(
      patched_net.forward(x).allclose(next.model.forward(x), 1e-4f));
}

TEST(FuseEpilogue, FusedCloneAndCloneSharedMatchBitForBit) {
  CompiledHarness h(0.9, /*batch_norm=*/true);
  const auto net = fused_compiler().compile(h.model, &h.smodel);
  ASSERT_GT(net.num_fused_ops(), 0u);
  const auto replica = net.clone();
  EXPECT_EQ(replica.num_fused_ops(), net.num_fused_ops());
  const auto shared_replica =
      net.clone_shared(std::unordered_set<const void*>{});
  const auto x = random_tensor(tensor::Shape({4, 12}), 511);
  const auto expected = net.forward(x);
  EXPECT_TRUE(replica.forward(x).equals(expected));
  EXPECT_TRUE(shared_replica.forward(x).equals(expected));
}

std::shared_ptr<sparse::CsrMatrix> dense_csr(std::size_t rows,
                                             std::size_t cols,
                                             std::uint64_t seed) {
  return std::make_shared<sparse::CsrMatrix>(sparse::CsrMatrix::from_dense(
      random_tensor(tensor::Shape({rows, cols}), seed), 0.0f));
}

TEST(FuseEpilogue, SharedProducerActivationIsNotFused) {
  // spmm feeds BOTH the ReLU and a residual join: fusing the ReLU would
  // activate the raw edge the join reads. The single-consumer guard must
  // leave the plan untouched.
  serve::Plan plan;
  plan.ops.resize(3);
  plan.ops[0].kind = serve::PlanOpKind::kSpmm;
  plan.ops[0].inputs = {serve::Plan::kInputId};
  plan.ops[0].csr = dense_csr(4, 4, 601);
  plan.ops[1].kind = serve::PlanOpKind::kActivation;
  plan.ops[1].inputs = {0};
  plan.ops[1].act = serve::ActKind::kRelu;
  plan.ops[2].kind = serve::PlanOpKind::kAdd;
  plan.ops[2].inputs = {0, 1};
  plan.validate();

  serve::FuseEpilogue().run(plan);
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.fused_ops, 0u);
  EXPECT_EQ(count_kind(plan, serve::PlanOpKind::kActivation), 1u);
  EXPECT_TRUE(plan.ops[0].epilogue.empty());
}

TEST(FuseEpilogue, SharedResidualEntryIsNotFused) {
  // The join's topologically-later entry (op1) also feeds a second join:
  // absorbing the first add into it would hide the raw value op3 needs.
  serve::Plan plan;
  plan.ops.resize(4);
  plan.ops[0].kind = serve::PlanOpKind::kSpmm;
  plan.ops[0].inputs = {serve::Plan::kInputId};
  plan.ops[0].csr = dense_csr(4, 4, 602);
  plan.ops[1].kind = serve::PlanOpKind::kSpmm;
  plan.ops[1].inputs = {0};
  plan.ops[1].csr = dense_csr(4, 4, 603);
  plan.ops[2].kind = serve::PlanOpKind::kAdd;
  plan.ops[2].inputs = {1, 0};
  plan.ops[3].kind = serve::PlanOpKind::kAdd;
  plan.ops[3].inputs = {2, 1};
  plan.validate();

  serve::FuseEpilogue().run(plan);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.fused_ops, 0u);
  EXPECT_EQ(count_kind(plan, serve::PlanOpKind::kAdd), 2u);
  EXPECT_TRUE(plan.ops[1].epilogue.empty());
}

TEST(FuseEpilogue, AnnotateCountsEpilogueFlops) {
  // Standalone kActivation nodes carry no FLOPs in annotate(); a fused
  // epilogue's work IS counted, on the CSR node: one FLOP per activated
  // output element. For the 12→24→16→5 MLP at batch 1 the exact fused
  // surplus is the two hidden widths.
  CompiledHarness h(0.9);
  serve::Plan plain = serve::Compiler().plan(h.model, &h.smodel);
  serve::Plan fused = fused_compiler().plan(h.model, &h.smodel);
  ASSERT_EQ(fused.fused_ops, 2u);

  const tensor::Shape sample({12});
  double plain_total = 0.0, fused_total = 0.0;
  for (const auto& c : plain.annotate(sample)) plain_total += c.flops;
  for (const auto& c : fused.annotate(sample)) fused_total += c.flops;
  EXPECT_DOUBLE_EQ(fused_total - plain_total, 24.0 + 16.0);
}

TEST(FuseEpilogue, DumpAndSummaryAnnotateFusedNodes) {
  CompiledHarness h(0.9, /*batch_norm=*/true);
  auto compiler = fused_compiler();
  serve::Plan plan = compiler.plan(h.model, &h.smodel);
  ASSERT_GT(plan.fused_ops, 0u);
  const tensor::Shape sample({12});
  const std::string dump = plan.dump(&sample);
  EXPECT_NE(dump.find("fused("), std::string::npos);
  const auto net = compiler.bind(std::move(plan));
  EXPECT_NE(net.summary().find("fused"), std::string::npos);
}

TEST(Compiler, PipelineSpecRoundTripsAndFailsLoudly) {
  serve::Compiler compiler;
  EXPECT_EQ(compiler.pipeline_spec(),
            "elide_dropout,fold_batch_norm,free_after_last_use");
  compiler.pipeline_from_spec(
      "elide-dropout,fold-bn,fuse-epilogue,partition-rows:4,"
      "free-after-last-use");
  EXPECT_EQ(compiler.pipeline_spec(),
            "elide_dropout,fold_batch_norm,fuse_epilogue,partition_rows,"
            "free_after_last_use");
  EXPECT_THROW(compiler.pipeline_from_spec("no-such-pass"),
               util::CheckError);
  EXPECT_THROW(compiler.pipeline_from_spec(""), util::CheckError);
  EXPECT_THROW(compiler.pipeline_from_spec("fuse-epilogue:3"),
               util::CheckError);  // takes no arguments
  EXPECT_THROW(compiler.pipeline_from_spec("partition-rows:x"),
               util::CheckError);  // bad integer
}

TEST(Compiler, SpecBuiltPartitionRowsUsesArgsAndSampleShape) {
  CompiledHarness h(0.9);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::CompileOptions opts;
  opts.sample_shape = tensor::Shape({12});
  serve::Compiler compiler(opts);
  compiler.pipeline_from_spec(
      "elide-dropout,fold-bn,partition-rows:4:0,free-after-last-use");
  serve::Plan plan = compiler.plan(h.model, &h.smodel);
  ASSERT_GT(plan.partitioned_ops, 0u);
  // ways=4 came through the spec: every partitioned node is a 4-slice
  // group.
  EXPECT_EQ(count_kind(plan, serve::PlanOpKind::kRowSlice),
            4 * plan.partitioned_ops);
  const auto net = compiler.bind(std::move(plan));
  const auto x = random_tensor(tensor::Shape({5, 12}), 512);
  EXPECT_TRUE(net.forward(x).equals(baseline.forward(x)));
}

TEST(Compiler, RegisterPassExtendsTheSpecNamespace) {
  class MarkerPass final : public serve::Pass {
   public:
    explicit MarkerPass(std::shared_ptr<std::size_t> hits)
        : hits_(std::move(hits)) {}
    std::string name() const override { return "test_marker"; }
    void run(serve::Plan&) const override { ++*hits_; }

   private:
    std::shared_ptr<std::size_t> hits_;
  };
  auto hits = std::make_shared<std::size_t>(0);
  serve::Compiler::register_pass(
      "test-marker",
      [hits](const std::vector<std::string>& args,
             const serve::CompileOptions&) -> std::unique_ptr<serve::Pass> {
        EXPECT_EQ(args, (std::vector<std::string>{"7"}));
        return std::make_unique<MarkerPass>(hits);
      });

  CompiledHarness h(0.9);
  serve::Compiler compiler;
  compiler.pipeline_from_spec(
      "elide-dropout,fold-bn,test-marker:7,free-after-last-use");
  EXPECT_EQ(compiler.pipeline_spec(),
            "elide_dropout,fold_batch_norm,test_marker,free_after_last_use");
  const auto net = compiler.compile(h.model, &h.smodel);
  EXPECT_EQ(*hits, 1u);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({4, 12}), 513);
  EXPECT_TRUE(net.forward(x).equals(baseline.forward(x)));
}

// --- Observability: measured costs, auto partitioning, tracing ----------

/// partition-rows with auto_mode: split selection comes from a probe's
/// measured per-op wall time instead of the static nnz/FLOPs model.
serve::Compiler auto_partition_compiler(std::size_t ways,
                                        tensor::Shape sample_shape,
                                        double threshold = 0.0) {
  serve::Compiler compiler;
  serve::PartitionRowsOptions popts;
  popts.ways = ways;
  popts.min_cost_share = threshold;
  popts.sample_shape = std::move(sample_shape);
  popts.auto_mode = true;
  compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
  return compiler;
}

TEST(PartitionRows, AutoModeMlpMatchesUnpartitionedAndStatic) {
  // Auto mode only changes WHICH nodes split (measured shares instead of
  // static cost); slice boundaries still come from balanced_row_splits,
  // so the answers stay bit-identical to the unpartitioned program. At
  // threshold 0 every CSR node splits either way, so auto and static
  // produce the same program.
  CompiledHarness h(0.9, /*batch_norm=*/true);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  const auto x = random_tensor(tensor::Shape({5, 12}), 601);
  const auto expected = baseline.forward(x);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    const auto net = auto_partition_compiler(k, tensor::Shape({12}))
                         .compile(h.model, &h.smodel);
    EXPECT_GT(net.num_partitioned_ops(), 0u) << "k=" << k;
    const auto got = net.forward(x);
    EXPECT_TRUE(got.equals(expected)) << "k=" << k;
    const auto static_net = partition_compiler(k, tensor::Shape({12}))
                                .compile(h.model, &h.smodel);
    EXPECT_EQ(net.num_partitioned_ops(), static_net.num_partitioned_ops())
        << "k=" << k;
    EXPECT_TRUE(got.equals(static_net.forward(x))) << "k=" << k;
  }
}

TEST(PartitionRows, AutoModeResNetMatchesUnpartitioned) {
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.07;
  util::Rng rng(602);
  models::ResNet resnet(cfg, rng);
  sparse::SparseModel smodel(resnet, 0.85, sparse::DistributionKind::kErk,
                             rng);
  resnet.forward(random_tensor(tensor::Shape({4, 3, 8, 8}), 603));
  resnet.set_training(false);

  const auto baseline = serve::CompiledNet::compile(resnet, &smodel);
  const auto net = auto_partition_compiler(2, tensor::Shape({3, 8, 8}))
                       .compile(resnet, &smodel);
  EXPECT_GT(net.num_partitioned_ops(), 0u);
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 604);
  EXPECT_TRUE(net.forward(x).equals(baseline.forward(x)));
}

TEST(PartitionRows, AutoModeRequiresSampleShape) {
  // The probe needs an input to forward; auto without a sample shape is
  // an API-misuse error, not a silent fallback.
  CompiledHarness h(0.9);
  serve::Compiler compiler;
  serve::PartitionRowsOptions popts;
  popts.ways = 2;
  popts.min_cost_share = 0.0;
  popts.auto_mode = true;
  compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
  EXPECT_THROW(compiler.compile(h.model, &h.smodel), util::CheckError);
}

TEST(Compiler, SpecBuiltAutoPartitionRowsParsesAndMatches) {
  CompiledHarness h(0.9);
  const auto baseline = serve::CompiledNet::compile(h.model, &h.smodel);
  serve::CompileOptions opts;
  opts.sample_shape = tensor::Shape({12});
  serve::Compiler compiler(opts);
  compiler.pipeline_from_spec(
      "elide-dropout,fold-bn,partition-rows:auto:2:0,free-after-last-use");
  EXPECT_EQ(compiler.pipeline_spec(),
            "elide_dropout,fold_batch_norm,partition_rows,"
            "free_after_last_use");
  const auto net = compiler.compile(h.model, &h.smodel);
  EXPECT_GT(net.num_partitioned_ops(), 0u);
  const auto x = random_tensor(tensor::Shape({5, 12}), 605);
  EXPECT_TRUE(net.forward(x).equals(baseline.forward(x)));

  serve::Compiler bad(opts);
  EXPECT_THROW(bad.pipeline_from_spec("partition-rows:auto:2:0:9"),
               util::CheckError);  // too many arguments
}

TEST(Plan, AnnotateOverridesSharesWithMeasuredProfile) {
  CompiledHarness h(0.9);
  serve::Plan plan = serve::Compiler().plan(h.model, &h.smodel);
  const tensor::Shape sample({12});

  // A size-mismatched profile is ignored: analytic shares stand.
  obs::OpProfile wrong_size(plan.ops.size() + 1);
  const auto analytic = plan.annotate(sample);
  const auto ignored = plan.annotate(sample, &wrong_size);
  ASSERT_EQ(ignored.size(), analytic.size());
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_DOUBLE_EQ(ignored[i].share, analytic[i].share);
    EXPECT_DOUBLE_EQ(ignored[i].measured_ms, 0.0);
  }
  // So is an attached-but-empty profile (nothing measured yet).
  obs::OpProfile empty(plan.ops.size());
  const auto still_analytic = plan.annotate(sample, &empty);
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_DOUBLE_EQ(still_analytic[i].share, analytic[i].share);
  }

  // Measured time replaces the shares: 3ms on node 0, 1ms on node 1.
  obs::OpProfile measured(plan.ops.size());
  measured.add(0, 3'000'000);
  measured.add(1, 1'000'000);
  const auto costs = plan.annotate(sample, &measured);
  EXPECT_DOUBLE_EQ(costs[0].share, 0.75);
  EXPECT_DOUBLE_EQ(costs[0].measured_ms, 3.0);
  EXPECT_DOUBLE_EQ(costs[1].share, 0.25);
  EXPECT_DOUBLE_EQ(costs[1].measured_ms, 1.0);
  for (std::size_t i = 2; i < costs.size(); ++i) {
    EXPECT_DOUBLE_EQ(costs[i].share, 0.0);
    EXPECT_DOUBLE_EQ(costs[i].measured_ms, 0.0);
  }
  // The FLOPs column is analytic and unaffected by measurement.
  EXPECT_DOUBLE_EQ(costs[0].flops, analytic[0].flops);
}

TEST(CompiledNet, ProfileOpsAccumulatesAndIsSharedAcrossClones) {
  CompiledHarness h(0.9);
  serve::CompileOptions opts;
  opts.profile_ops = true;
  const auto net =
      serve::Compiler(opts).compile(h.model, &h.smodel);
  const obs::OpProfile* profile = net.op_profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->size(), net.num_ops());
  EXPECT_EQ(profile->total_ns(), 0);

  net.forward(random_tensor(tensor::Shape({4, 12}), 606));
  std::uint64_t calls = 0;
  for (std::size_t i = 0; i < profile->size(); ++i) {
    calls += profile->node_calls(i);
  }
  EXPECT_EQ(calls, net.num_ops());  // every node timed exactly once

  // Replica clones aggregate into the SAME profile, so shard counts sum.
  const auto replica = net.clone();
  EXPECT_EQ(replica.op_profile(), profile);
  replica.forward(random_tensor(tensor::Shape({4, 12}), 607));
  calls = 0;
  for (std::size_t i = 0; i < profile->size(); ++i) {
    calls += profile->node_calls(i);
  }
  EXPECT_EQ(calls, 2 * net.num_ops());

  // Off by default: no profile, no timing.
  const auto plain = serve::CompiledNet::compile(h.model, &h.smodel);
  EXPECT_EQ(plain.op_profile(), nullptr);
}

TEST(Server, TraceSpansTileRequestLatencyExactly) {
  // queue = [enqueued, popped] and batch = [popped, done] derive from the
  // same three integer stamps as request = [enqueued, done], so the two
  // child spans tile the request span EXACTLY — no slack.
  CompiledHarness h(0.8);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  obs::trace().enable(/*sample_every=*/1);
  serve::ServerConfig cfg;
  cfg.num_threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.5;
  serve::InferenceServer server(net, cfg);
  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 620 + i)));
  }
  for (auto& f : futures) f.get();
  server.shutdown();
  obs::trace().disable();

  struct Lane {
    const obs::TraceEvent* request = nullptr;
    const obs::TraceEvent* queue = nullptr;
    const obs::TraceEvent* batch = nullptr;
  };
  std::map<std::uint64_t, Lane> lanes;
  std::size_t op_spans = 0;
  const std::vector<obs::TraceEvent> events = obs::trace().drain();
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind == obs::SpanKind::kOp) ++op_spans;
    if (!obs::is_request_scoped(ev.kind)) continue;
    Lane& lane = lanes[ev.trace_id];
    if (ev.kind == obs::SpanKind::kRequest) lane.request = &ev;
    if (ev.kind == obs::SpanKind::kQueue) lane.queue = &ev;
    if (ev.kind == obs::SpanKind::kBatch) lane.batch = &ev;
  }
  // The global recorder is shared across tests; only require that OUR
  // requests produced complete lanes (other tests may leave partial
  // rings behind). At sample_every=1 all 8 lanes must be complete.
  std::size_t complete = 0;
  for (const auto& [trace_id, lane] : lanes) {
    if (lane.request == nullptr || lane.queue == nullptr ||
        lane.batch == nullptr) {
      continue;
    }
    ++complete;
    EXPECT_EQ(lane.queue->ts_ns, lane.request->ts_ns) << trace_id;
    EXPECT_EQ(lane.batch->ts_ns, lane.queue->ts_ns + lane.queue->dur_ns)
        << trace_id;
    EXPECT_EQ(lane.queue->dur_ns + lane.batch->dur_ns,
              lane.request->dur_ns)
        << trace_id;
  }
  EXPECT_GE(complete, 8u);
  EXPECT_GT(op_spans, 0u);  // executor recorded per-PlanOp spans
}

TEST(Server, MetricsRegistryRecordsRequestsAndLatency) {
  CompiledHarness h(0.8);
  const auto net = serve::CompiledNet::compile(h.model, &h.smodel);
  obs::MetricsRegistry registry;
  serve::ServerConfig cfg;
  cfg.num_threads = 2;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 0.5;
  cfg.metrics = &registry;
  cfg.metrics_label = "m0";
  serve::InferenceServer server(net, cfg);
  std::vector<std::future<tensor::Tensor>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        server.submit(random_tensor(tensor::Shape({12}), 630 + i)));
  }
  for (auto& f : futures) f.get();
  // Futures resolve before the worker bumps its counters; shutdown joins
  // the workers, so the snapshot taken after it is complete.
  server.shutdown();
  const serve::StatsSnapshot snapshot = server.stats();

  EXPECT_EQ(registry.counter("dstee_requests_total", "m0").value(), 6u);
  obs::Histogram& lat = registry.histogram("dstee_request_latency_ms", "m0");
  EXPECT_EQ(lat.count(), 6u);
  EXPECT_GE(registry.counter("dstee_batches_total", "m0").value(), 1u);

  // The StatsSnapshot bridge lands the same numbers as labeled gauges.
  serve::export_stats_metrics(registry, "m0", snapshot);
  EXPECT_EQ(registry.gauge("dstee_stats_requests", "m0").value(), 6.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("dstee_requests_total{model=\"m0\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dstee_request_latency_ms histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace dstee
