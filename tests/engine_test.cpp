// DstEngine tests: Algorithm 1's invariants under every growth policy.
#include <gtest/gtest.h>

#include <memory>

#include "methods/dst_engine.hpp"
#include "tensor/ops.hpp"
#include "models/mlp.hpp"
#include "optim/optimizer.hpp"
#include "sparse/stats.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

struct EngineHarness {
  EngineHarness(double sparsity, const std::string& grow_kind,
                bool redistribute = false, std::uint64_t seed = 7)
      : rng(seed), model(make_cfg(), rng),
        smodel(model, sparsity, sparse::DistributionKind::kErk, rng),
        optimizer(model.parameters(), sgd_cfg()) {
    methods::DstEngineConfig cfg;
    cfg.schedule.delta_t = 10;
    cfg.schedule.total_iterations = 1000;
    cfg.schedule.stop_fraction = 1.0;
    cfg.schedule.initial_drop_fraction = 0.3;
    cfg.drop = std::make_unique<methods::MagnitudeDrop>();
    if (grow_kind == "random") {
      cfg.grow = std::make_unique<methods::RandomGrow>();
    } else if (grow_kind == "gradient") {
      cfg.grow = std::make_unique<methods::GradientGrow>();
    } else if (grow_kind == "momentum") {
      cfg.grow = std::make_unique<methods::MomentumGrow>();
    } else {
      methods::DstEeGrow::Config ee;
      cfg.grow = std::make_unique<methods::DstEeGrow>(ee);
    }
    cfg.redistribute_across_layers = redistribute;
    engine = std::make_unique<methods::DstEngine>(smodel, optimizer,
                                                  std::move(cfg),
                                                  rng.fork("engine"));
  }

  static models::MlpConfig make_cfg() {
    models::MlpConfig cfg;
    cfg.in_features = 16;
    cfg.hidden = {32, 32};
    cfg.out_features = 8;
    return cfg;
  }
  static optim::Sgd::Config sgd_cfg() {
    optim::Sgd::Config cfg;
    cfg.lr = 0.1;
    return cfg;
  }

  void fill_random_grads(std::uint64_t seed) {
    util::Rng r(seed);
    for (auto& layer : smodel.layers()) {
      tensor::fill_normal(layer.param().grad, r, 0.0f, 1.0f);
    }
  }

  util::Rng rng;
  models::Mlp model;
  sparse::SparseModel smodel;
  optim::Sgd optimizer;
  std::unique_ptr<methods::DstEngine> engine;
};

class EngineAllPolicies : public ::testing::TestWithParam<
                              std::tuple<double, const char*>> {};

TEST_P(EngineAllPolicies, SparsityPreservedAcrossManyRounds) {
  const double sparsity = std::get<0>(GetParam());
  EngineHarness h(sparsity, std::get<1>(GetParam()));
  const std::size_t active_before = h.smodel.total_active();
  for (std::size_t round = 1; round <= 20; ++round) {
    h.fill_random_grads(round);
    h.engine->force_update(round * 10, 0.1);
    EXPECT_EQ(h.smodel.total_active(), active_before)
        << "active count drifted at round " << round;
    EXPECT_EQ(sparse::validate_invariants(h.smodel), "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, EngineAllPolicies,
    ::testing::Combine(::testing::Values(0.5, 0.8, 0.9, 0.95, 0.98),
                       ::testing::Values("random", "gradient", "momentum",
                                         "dst-ee")));

TEST(Engine, MaybeUpdateHonoursSchedule) {
  EngineHarness h(0.9, "dst-ee");
  h.fill_random_grads(1);
  EXPECT_FALSE(h.engine->maybe_update(5, 0.1));
  EXPECT_TRUE(h.engine->maybe_update(10, 0.1));
  EXPECT_FALSE(h.engine->maybe_update(11, 0.1));
  EXPECT_EQ(h.engine->log().num_rounds(), 1u);
}

TEST(Engine, DropAndGrowCountsBalance) {
  EngineHarness h(0.9, "dst-ee");
  h.fill_random_grads(2);
  h.engine->force_update(10, 0.1);
  const auto& round = h.engine->log().rounds().front();
  EXPECT_GT(round.dropped, 0u);
  EXPECT_EQ(round.dropped, round.grown);
}

TEST(Engine, GrownWeightsStartAtZero) {
  EngineHarness h(0.9, "dst-ee");
  // Make all active weights large so drops/zeros are visible.
  for (auto& layer : h.smodel.layers()) {
    for (const auto idx : layer.mask().active_indices()) {
      layer.param().value[idx] = 5.0f;
    }
  }
  h.fill_random_grads(3);
  h.engine->force_update(10, 0.1);
  for (auto& layer : h.smodel.layers()) {
    for (const auto idx : layer.mask().active_indices()) {
      const float v = layer.param().value[idx];
      EXPECT_TRUE(v == 0.0f || v == 5.0f);  // old survivors or fresh zeros
    }
  }
}

TEST(Engine, CountersAccumulateOnlyActivePositions) {
  EngineHarness h(0.8, "random");
  h.fill_random_grads(4);
  h.engine->force_update(10, 0.1);
  for (auto& layer : h.smodel.layers()) {
    const auto& counter = layer.counter();
    const auto& mask = layer.mask().tensor();
    for (std::size_t i = 0; i < counter.numel(); ++i) {
      // After init (N=M) plus one round (N+=M'), a currently-active element
      // must have counter >= 1.
      if (mask[i] != 0.0f) {
        EXPECT_GE(counter[i], 1.0f);
      }
    }
  }
}

TEST(Engine, CounterTotalGrowsByActiveCountEachRound) {
  EngineHarness h(0.9, "dst-ee");
  auto counter_total = [&] {
    double total = 0.0;
    for (auto& layer : h.smodel.layers()) {
      total += tensor::sum(layer.counter());
    }
    return total;
  };
  const double before = counter_total();
  h.fill_random_grads(5);
  h.engine->force_update(10, 0.1);
  const double after = counter_total();
  EXPECT_DOUBLE_EQ(after - before,
                   static_cast<double>(h.smodel.total_active()));
}

TEST(Engine, ExplorationRateIncreasesWithRandomGrowth) {
  EngineHarness h(0.9, "random");
  const double r0 = h.engine->exploration().exploration_rate();
  for (std::size_t round = 1; round <= 10; ++round) {
    h.fill_random_grads(round + 50);
    h.engine->force_update(round * 10, 0.1);
  }
  EXPECT_GT(h.engine->exploration().exploration_rate(), r0);
}

TEST(Engine, DstEeExploresMoreThanGreedyGradient) {
  // The paper's core claim at the mechanism level: with equal budgets,
  // DST-EE's coverage R exceeds pure gradient growth (which keeps
  // re-growing the same high-gradient positions).
  EngineHarness greedy(0.9, "gradient", false, 21);
  EngineHarness ee(0.9, "dst-ee", false, 21);
  for (std::size_t round = 1; round <= 25; ++round) {
    // Identical, persistent gradient landscape for both.
    greedy.fill_random_grads(1234);
    ee.fill_random_grads(1234);
    greedy.engine->force_update(round * 10, 0.1);
    ee.engine->force_update(round * 10, 0.1);
  }
  EXPECT_GT(ee.engine->exploration().exploration_rate(),
            greedy.engine->exploration().exploration_rate());
}

TEST(Engine, NeverSeenGrownTrackedForFreshPositions) {
  EngineHarness h(0.95, "random");
  h.fill_random_grads(6);
  h.engine->force_update(10, 0.1);
  const auto& round = h.engine->log().rounds().front();
  // At 95% sparsity almost all inactive positions have never been active.
  EXPECT_GT(round.never_seen_grown, 0u);
  EXPECT_LE(round.never_seen_grown, round.grown);
}

TEST(Engine, RedistributionPreservesGlobalBudget) {
  EngineHarness h(0.9, "random", /*redistribute=*/true);
  const std::size_t before = h.smodel.total_active();
  for (std::size_t round = 1; round <= 10; ++round) {
    h.fill_random_grads(round + 7);
    h.engine->force_update(round * 10, 0.1);
    EXPECT_EQ(h.smodel.total_active(), before);
    EXPECT_EQ(sparse::validate_invariants(h.smodel), "");
  }
}

TEST(Engine, RedistributionShiftsDensityTowardHighGradientLayers) {
  EngineHarness h(0.9, "random", /*redistribute=*/true, 31);
  // Layer 0 gets huge gradients, the rest tiny ones.
  for (std::size_t round = 1; round <= 15; ++round) {
    for (std::size_t i = 0; i < h.smodel.num_layers(); ++i) {
      auto& g = h.smodel.layer(i).param().grad;
      util::Rng r(round * 10 + i);
      tensor::fill_normal(g, r, 0.0f, i == 0 ? 10.0f : 0.01f);
    }
    h.engine->force_update(round * 10, 0.1);
  }
  const double d0 = h.smodel.layer(0).density();
  const double d1 = h.smodel.layer(1).density();
  EXPECT_GT(d0, d1);
}

TEST(Engine, MomentumResetOnTopologyChange) {
  EngineHarness h(0.9, "random");
  // Build momentum everywhere.
  for (auto& layer : h.smodel.layers()) layer.param().grad.fill(1.0f);
  h.optimizer.step();
  // Snapshot values of weights that are about to be dropped: magnitude drop
  // picks smallest |w| — force one active weight to be tiny.
  auto& layer0 = h.smodel.layer(0);
  const auto active = layer0.mask().active_indices();
  const std::size_t victim = active[0];
  for (const auto idx : active) layer0.param().value[idx] = 1.0f;
  layer0.param().value[victim] = 1e-6f;

  h.fill_random_grads(8);
  h.engine->force_update(10, 0.1);
  EXPECT_FALSE(layer0.mask().is_active(victim));
  EXPECT_EQ(layer0.param().value[victim], 0.0f);
  // With gradient zero and momentum reset, a further step must not move it.
  for (auto& layer : h.smodel.layers()) layer.param().grad.fill(0.0f);
  h.smodel.apply_masks_to_grads();
  h.optimizer.step();
  EXPECT_EQ(layer0.param().value[victim], 0.0f);
}

TEST(Engine, RequiresPolicies) {
  EngineHarness h(0.9, "dst-ee");
  methods::DstEngineConfig cfg;
  cfg.schedule.delta_t = 10;
  cfg.schedule.total_iterations = 100;
  cfg.grow = std::make_unique<methods::RandomGrow>();
  // missing drop policy
  EXPECT_THROW(methods::DstEngine(h.smodel, h.optimizer, std::move(cfg),
                                  util::Rng(1)),
               util::CheckError);
}

TEST(Engine, ObserverSeesEveryLayerWithConsistentSets) {
  EngineHarness h(0.9, "dst-ee");
  std::vector<std::size_t> seen_layers;
  h.engine->set_observer([&](const methods::UpdateObservation& obs) {
    seen_layers.push_back(obs.layer_index);
    EXPECT_EQ(obs.round, 1u);
    EXPECT_EQ(obs.iteration, 10u);
    EXPECT_EQ(obs.drops.size(), obs.grows.size());
    EXPECT_EQ(obs.scores.shape(), obs.dense_grad.shape());
    // Drops were active, grows were inactive, under the pre-update mask —
    // by the time the observer fires the mask is still pre-update.
    const auto& layer = h.smodel.layer(obs.layer_index);
    for (const auto d : obs.drops) EXPECT_TRUE(layer.mask().is_active(d));
    for (const auto g : obs.grows) EXPECT_FALSE(layer.mask().is_active(g));
  });
  h.fill_random_grads(77);
  h.engine->force_update(10, 0.1);
  ASSERT_EQ(seen_layers.size(), h.smodel.num_layers());
  for (std::size_t i = 0; i < seen_layers.size(); ++i) {
    EXPECT_EQ(seen_layers[i], i);
  }
}

TEST(Engine, ObserverCanBeReplacedAndCleared) {
  EngineHarness h(0.9, "random");
  int calls_a = 0, calls_b = 0;
  h.engine->set_observer(
      [&](const methods::UpdateObservation&) { ++calls_a; });
  h.fill_random_grads(1);
  h.engine->force_update(10, 0.1);
  h.engine->set_observer(
      [&](const methods::UpdateObservation&) { ++calls_b; });
  h.fill_random_grads(2);
  h.engine->force_update(20, 0.1);
  EXPECT_EQ(calls_a, static_cast<int>(h.smodel.num_layers()));
  EXPECT_EQ(calls_b, static_cast<int>(h.smodel.num_layers()));
}

TEST(Engine, UpdateStatsRecordIterationAndRound) {
  EngineHarness h(0.9, "dst-ee");
  h.fill_random_grads(9);
  h.engine->force_update(40, 0.1);
  h.fill_random_grads(10);
  h.engine->force_update(50, 0.1);
  const auto& rounds = h.engine->log().rounds();
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].round, 1u);
  EXPECT_EQ(rounds[0].iteration, 40u);
  EXPECT_EQ(rounds[1].round, 2u);
  EXPECT_EQ(rounds[1].iteration, 50u);
}

}  // namespace
}  // namespace dstee
