// src/runtime/ tests: pool lifecycle, the run_chunks/parallel_for fan-out
// contract (coverage, exceptions, nesting, concurrent submitters), and
// bit-identical kernel results across thread counts — the determinism
// guarantee every parallel kernel in the codebase leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kernels/conv.hpp"
#include "kernels/pool.hpp"
#include "nn/conv2d.hpp"
#include "runtime/pool.hpp"
#include "sparse/csr.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

TEST(RuntimePool, RunChunksCoversRangeExactlyOnce) {
  runtime::Pool pool(3);
  for (const std::size_t chunks : {std::size_t{1}, std::size_t{3},
                                   std::size_t{16}, std::size_t{0}}) {
    std::vector<std::atomic<int>> hits(13);
    pool.run_chunks(13, chunks, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t i = b0; i < b1; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  // Empty range still invokes fn once with an empty chunk.
  bool called = false;
  pool.run_chunks(0, 4, [&](std::size_t b0, std::size_t b1) {
    called = true;
    EXPECT_EQ(b0, b1);
  });
  EXPECT_TRUE(called);
}

TEST(RuntimePool, ZeroWorkerPoolRunsEverythingInline) {
  runtime::Pool pool(0);
  const std::thread::id me = std::this_thread::get_id();
  std::vector<int> hits(9, 0);  // plain ints: no other thread may touch them
  pool.run_chunks(9, 4, [&](std::size_t b0, std::size_t b1) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    for (std::size_t i = b0; i < b1; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
  bool ran = false;
  pool.submit([&] { ran = true; });  // inline on a zero-worker pool
  EXPECT_TRUE(ran);
}

TEST(RuntimePool, LifecycleSurvivesRepeatedConstructionAndIdleDestruction) {
  for (int round = 0; round < 5; ++round) {
    runtime::Pool pool(2);
    if (round % 2 == 0) continue;  // destroy while fully idle
    std::atomic<int> sum{0};
    pool.run_chunks(100, 0, [&](std::size_t b0, std::size_t b1) {
      sum.fetch_add(static_cast<int>(b1 - b0));
    });
    EXPECT_EQ(sum.load(), 100);
  }
}

TEST(RuntimePool, ParallelForRespectsGrain) {
  runtime::Pool pool(3);
  std::atomic<int> chunks{0};
  // 10 items at grain 8 → one chunk despite 3 workers being available.
  pool.parallel_for(10, 8, [&](std::size_t, std::size_t) {
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 1);
  // Grain 1 fans out across workers + caller, bounded by the pool width.
  chunks = 0;
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, 1, [&](std::size_t b0, std::size_t b1) {
    chunks.fetch_add(1);
    for (std::size_t i = b0; i < b1; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 4);  // workers() + 1
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RuntimePool, ExceptionsPropagateFromAnyChunkAndPoolSurvives) {
  runtime::Pool pool(2);
  // A pool-executed chunk throws.
  EXPECT_THROW(
      pool.run_chunks(9, 3,
                      [&](std::size_t b0, std::size_t) {
                        if (b0 >= 6) throw std::runtime_error("worker chunk");
                      }),
      std::runtime_error);
  // The caller's own chunk throws.
  EXPECT_THROW(
      pool.run_chunks(9, 3,
                      [&](std::size_t b0, std::size_t) {
                        if (b0 == 0) throw std::runtime_error("caller chunk");
                      }),
      std::runtime_error);
  // The pool is fully usable afterwards.
  std::atomic<int> sum{0};
  pool.run_chunks(10, 3, [&](std::size_t b0, std::size_t b1) {
    sum.fetch_add(static_cast<int>(b1 - b0));
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(RuntimePool, ConcurrentSubmittersEachGetCorrectResults) {
  runtime::Pool pool(3);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kRounds = 25;
  std::atomic<std::size_t> wrong{0};
  auto submitter = [&](std::size_t id) {
    for (std::size_t round = 0; round < kRounds; ++round) {
      const std::size_t n = 17 + id * 7 + round;
      std::vector<std::atomic<int>> hits(n);
      pool.run_chunks(n, 4, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t i = b0; i < b1; ++i) hits[i].fetch_add(1);
      });
      for (const auto& h : hits) {
        if (h.load() != 1) wrong.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kSubmitters; ++id) {
    threads.emplace_back(submitter, id);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
}

TEST(RuntimePool, NestedParallelRegionsRunInlineWithoutDeadlock) {
  runtime::Pool pool(2);
  std::vector<std::atomic<int>> hits(6 * 8);
  // Outer fan-out saturates the pool; inner regions (from pool workers
  // AND from the caller mid-region) must complete inline instead of
  // waiting for workers that are already busy.
  pool.run_chunks(6, 6, [&](std::size_t o0, std::size_t o1) {
    for (std::size_t outer = o0; outer < o1; ++outer) {
      pool.run_chunks(8, 4, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t inner = i0; inner < i1; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RuntimePool, DetachedSubmitRunsEveryTask) {
  runtime::Pool pool(2);
  constexpr int kTasks = 64;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kTasks; });
  EXPECT_EQ(done, kTasks);
}

TEST(RuntimePool, DefaultPoolIsAProcessSingleton) {
  EXPECT_EQ(&runtime::default_pool(), &runtime::default_pool());
  EXPECT_GE(runtime::default_parallelism(), 1u);
  EXPECT_EQ(runtime::default_pool().workers(),
            runtime::default_parallelism() - 1);
}

// --- determinism: parallel kernels are bit-identical across thread
// counts, the contract the serving layer's correctness rests on ----------

TEST(RuntimeDeterminism, SpmmBitIdenticalAcrossThreadCountsAndPools) {
  util::Rng rng(3);
  auto w = random_tensor(tensor::Shape({64, 48}), 31);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (!rng.bernoulli(0.1)) w[i] = 0.0f;
  }
  const auto csr = sparse::CsrMatrix::from_dense(w);
  const auto x = random_tensor(tensor::Shape({7, 48}), 32);

  const auto serial = csr.spmm(x);
  runtime::Pool own_pool(3);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5},
                                    std::size_t{0}}) {
    EXPECT_TRUE(csr.spmm(x, runtime::IntraOp{threads, nullptr})
                    .equals(serial));
    EXPECT_TRUE(csr.spmm(x, runtime::IntraOp{threads, &own_pool})
                    .equals(serial));
  }
}

TEST(RuntimeDeterminism, ConvAndPoolKernelsBitIdenticalAcrossThreadCounts) {
  util::Rng rng(5);
  nn::Conv2d conv(3, 5, 3, 1, 1, rng, /*with_bias=*/true);
  const auto w2d =
      conv.weight().value.reshaped(tensor::Shape({5, 3 * 3 * 3}));
  const auto x = random_tensor(tensor::Shape({5, 3, 9, 9}), 33);

  const auto serial = kernels::conv2d_forward(x, w2d, 3, 1, 1,
                                              conv.bias().value.raw());
  runtime::Pool own_pool(2);
  for (const runtime::IntraOp intra :
       {runtime::IntraOp{3, nullptr}, runtime::IntraOp{0, &own_pool}}) {
    EXPECT_TRUE(kernels::conv2d_forward(x, w2d, 3, 1, 1,
                                        conv.bias().value.raw(), intra)
                    .equals(serial));
    EXPECT_TRUE(kernels::maxpool2d(x, 3, 3, nullptr, intra)
                    .equals(kernels::maxpool2d(x, 3, 3)));
    EXPECT_TRUE(kernels::avgpool2d(x, 3, intra)
                    .equals(kernels::avgpool2d(x, 3)));
    EXPECT_TRUE(kernels::global_avg_pool(x, intra)
                    .equals(kernels::global_avg_pool(x)));
  }
}

TEST(RuntimeDeterminism, TrainingForwardBitIdenticalAcrossIntraOpDefault) {
  util::Rng rng(9);
  nn::Conv2d conv(2, 4, 3, 1, 1, rng, /*with_bias=*/true);
  const auto x = random_tensor(tensor::Shape({6, 2, 8, 8}), 34);

  runtime::set_intra_op_default(1);
  const auto serial = conv.forward(x);
  runtime::set_intra_op_default(3);
  const auto threaded = conv.forward(x);
  runtime::set_intra_op_default(1);  // restore for other tests
  EXPECT_TRUE(threaded.equals(serial));
}

}  // namespace
}  // namespace dstee
