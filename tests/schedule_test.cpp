// UpdateSchedule (ΔT / α_t) tests.
#include <gtest/gtest.h>

#include "methods/schedule.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

methods::UpdateScheduleConfig base_config() {
  methods::UpdateScheduleConfig cfg;
  cfg.delta_t = 100;
  cfg.total_iterations = 1000;
  cfg.stop_fraction = 0.75;
  cfg.initial_drop_fraction = 0.3;
  return cfg;
}

TEST(Schedule, FiresOnMultiplesOfDeltaT) {
  methods::UpdateSchedule s(base_config());
  EXPECT_FALSE(s.is_update_step(0));  // no gradients yet
  EXPECT_FALSE(s.is_update_step(99));
  EXPECT_TRUE(s.is_update_step(100));
  EXPECT_TRUE(s.is_update_step(700));
  EXPECT_FALSE(s.is_update_step(701));
}

TEST(Schedule, StopsAfterStopFraction) {
  methods::UpdateSchedule s(base_config());
  EXPECT_EQ(s.stop_iteration(), 750u);
  EXPECT_FALSE(s.is_update_step(800));
  EXPECT_FALSE(s.is_update_step(900));
}

TEST(Schedule, StopFractionOneRunsToEnd) {
  auto cfg = base_config();
  cfg.stop_fraction = 1.0;
  methods::UpdateSchedule s(cfg);
  EXPECT_TRUE(s.is_update_step(900));
  EXPECT_FALSE(s.is_update_step(1000));  // t == T_end excluded
}

TEST(Schedule, CosineDecayEndpoints) {
  methods::UpdateSchedule s(base_config());
  EXPECT_NEAR(s.drop_fraction(0), 0.3, 1e-12);
  EXPECT_NEAR(s.drop_fraction(750), 0.0, 1e-12);
  EXPECT_NEAR(s.drop_fraction(375), 0.15, 1e-12);
}

TEST(Schedule, ConstantDecay) {
  auto cfg = base_config();
  cfg.decay = methods::DropFractionDecay::kConstant;
  methods::UpdateSchedule s(cfg);
  EXPECT_DOUBLE_EQ(s.drop_fraction(0), 0.3);
  EXPECT_DOUBLE_EQ(s.drop_fraction(700), 0.3);
}

TEST(Schedule, LinearDecay) {
  auto cfg = base_config();
  cfg.decay = methods::DropFractionDecay::kLinear;
  methods::UpdateSchedule s(cfg);
  EXPECT_NEAR(s.drop_fraction(0), 0.3, 1e-12);
  EXPECT_NEAR(s.drop_fraction(375), 0.15, 1e-12);
  EXPECT_NEAR(s.drop_fraction(750), 0.0, 1e-12);
}

TEST(Schedule, NumRoundsCountsFirings) {
  methods::UpdateSchedule s(base_config());
  // updates at 100..700 inclusive (750 stop) → 7 rounds
  EXPECT_EQ(s.num_rounds(), 7u);
  std::size_t counted = 0;
  for (std::size_t t = 0; t < 1000; ++t) {
    if (s.is_update_step(t)) ++counted;
  }
  EXPECT_EQ(counted, s.num_rounds());
}

TEST(Schedule, InvalidConfigsThrow) {
  auto cfg = base_config();
  cfg.delta_t = 0;
  EXPECT_THROW(methods::UpdateSchedule{cfg}, util::CheckError);
  cfg = base_config();
  cfg.total_iterations = 0;
  EXPECT_THROW(methods::UpdateSchedule{cfg}, util::CheckError);
  cfg = base_config();
  cfg.initial_drop_fraction = 0.0;
  EXPECT_THROW(methods::UpdateSchedule{cfg}, util::CheckError);
  cfg = base_config();
  cfg.stop_fraction = 0.0;
  EXPECT_THROW(methods::UpdateSchedule{cfg}, util::CheckError);
}

TEST(Schedule, DecayNamesRoundTrip) {
  EXPECT_EQ(methods::to_string(methods::DropFractionDecay::kCosine),
            "cosine");
  EXPECT_EQ(methods::to_string(methods::DropFractionDecay::kConstant),
            "constant");
  EXPECT_EQ(methods::to_string(methods::DropFractionDecay::kLinear),
            "linear");
}

class ScheduleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScheduleSweep, RoundCountMatchesBruteForceAtVariousDeltaT) {
  auto cfg = base_config();
  cfg.delta_t = GetParam();
  methods::UpdateSchedule s(cfg);
  std::size_t counted = 0;
  for (std::size_t t = 0; t < cfg.total_iterations; ++t) {
    if (s.is_update_step(t)) ++counted;
  }
  EXPECT_EQ(counted, s.num_rounds());
}

INSTANTIATE_TEST_SUITE_P(DeltaTGrid, ScheduleSweep,
                         ::testing::Values(1, 7, 50, 100, 333, 999));

}  // namespace
}  // namespace dstee
