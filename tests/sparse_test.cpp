// Sparse substrate tests: masks, distributions, SparseModel, exploration.
#include <gtest/gtest.h>

#include <set>

#include "models/mlp.hpp"
#include "sparse/distribution.hpp"
#include "sparse/exploration.hpp"
#include "sparse/mask.hpp"
#include "sparse/sparse_model.hpp"
#include "sparse/stats.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

TEST(Mask, DenseByDefault) {
  sparse::Mask m(tensor::Shape({3, 4}));
  EXPECT_EQ(m.num_active(), 12u);
  EXPECT_DOUBLE_EQ(m.density(), 1.0);
}

TEST(Mask, RandomHasExactCount) {
  util::Rng rng(1);
  const auto m = sparse::Mask::random(tensor::Shape({10, 10}), 37, rng);
  EXPECT_EQ(m.num_active(), 37u);
}

TEST(Mask, RandomDiffersAcrossDraws) {
  util::Rng rng(2);
  const auto a = sparse::Mask::random(tensor::Shape({20, 20}), 100, rng);
  const auto b = sparse::Mask::random(tensor::Shape({20, 20}), 100, rng);
  EXPECT_GT(a.hamming_distance(b), 0u);
}

TEST(Mask, FromIndices) {
  const auto m = sparse::Mask::from_indices(tensor::Shape({6}), {1, 4});
  EXPECT_TRUE(m.is_active(1));
  EXPECT_TRUE(m.is_active(4));
  EXPECT_FALSE(m.is_active(0));
  EXPECT_EQ(m.num_active(), 2u);
  EXPECT_THROW(sparse::Mask::from_indices(tensor::Shape({3}), {5}),
               util::CheckError);
}

TEST(Mask, ActivateDeactivate) {
  sparse::Mask m(tensor::Shape({4}));
  m.deactivate(2);
  EXPECT_FALSE(m.is_active(2));
  EXPECT_EQ(m.num_active(), 3u);
  m.activate(2);
  EXPECT_TRUE(m.is_active(2));
}

TEST(Mask, ActiveInactiveIndicesPartition) {
  util::Rng rng(3);
  const auto m = sparse::Mask::random(tensor::Shape({50}), 20, rng);
  const auto active = m.active_indices();
  const auto inactive = m.inactive_indices();
  EXPECT_EQ(active.size(), 20u);
  EXPECT_EQ(inactive.size(), 30u);
  std::set<std::size_t> all;
  all.insert(active.begin(), active.end());
  all.insert(inactive.begin(), inactive.end());
  EXPECT_EQ(all.size(), 50u);
}

TEST(Mask, ApplyZeroesMaskedEntries) {
  auto t = testing::random_tensor(tensor::Shape({10}), 4);
  const auto m = sparse::Mask::from_indices(tensor::Shape({10}), {0, 5});
  m.apply_to(t);
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 0 || i == 5) continue;
    EXPECT_EQ(t[i], 0.0f);
  }
  tensor::Tensor wrong({5});
  EXPECT_THROW(m.apply_to(wrong), util::CheckError);
}

TEST(Mask, HammingDistance) {
  const auto a = sparse::Mask::from_indices(tensor::Shape({5}), {0, 1});
  const auto b = sparse::Mask::from_indices(tensor::Shape({5}), {1, 2});
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(Distribution, ParseRoundTrip) {
  EXPECT_EQ(sparse::parse_distribution("erk"), sparse::DistributionKind::kErk);
  EXPECT_EQ(sparse::parse_distribution("ER"), sparse::DistributionKind::kEr);
  EXPECT_EQ(sparse::parse_distribution("Uniform"),
            sparse::DistributionKind::kUniform);
  EXPECT_THROW(sparse::parse_distribution("bogus"), util::CheckError);
  EXPECT_EQ(sparse::to_string(sparse::DistributionKind::kErk), "erk");
}

TEST(Distribution, UniformGivesGlobalDensityEverywhere) {
  const std::vector<tensor::Shape> shapes{tensor::Shape({100, 100}),
                                          tensor::Shape({50, 10})};
  const auto d = sparse::layer_densities(shapes, 0.9,
                                         sparse::DistributionKind::kUniform);
  for (const double x : d) EXPECT_DOUBLE_EQ(x, 0.1);
}

TEST(Distribution, ErkSmallLayersDenser) {
  // ERK gives higher density to layers with skewed aspect/smaller numel.
  const std::vector<tensor::Shape> shapes{
      tensor::Shape({512, 512, 3, 3}),  // huge conv
      tensor::Shape({10, 64}),          // tiny classifier
  };
  const auto d =
      sparse::layer_densities(shapes, 0.9, sparse::DistributionKind::kErk);
  EXPECT_GT(d[1], d[0]);
}

class DistributionGlobalSparsity
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DistributionGlobalSparsity, ActiveCountsHitGlobalTarget) {
  const double sparsity = std::get<0>(GetParam());
  const auto kind =
      static_cast<sparse::DistributionKind>(std::get<1>(GetParam()));
  const std::vector<tensor::Shape> shapes{
      tensor::Shape({64, 32, 3, 3}), tensor::Shape({128, 64, 3, 3}),
      tensor::Shape({256, 128}), tensor::Shape({10, 256})};
  std::size_t total = 0;
  for (const auto& s : shapes) total += s.numel();
  const auto counts = sparse::layer_active_counts(shapes, sparsity, kind);
  std::size_t active = 0;
  for (const auto c : counts) active += c;
  const auto target = static_cast<std::size_t>(
      std::llround((1.0 - sparsity) * static_cast<double>(total)));
  EXPECT_EQ(active, target);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], 1u);
    EXPECT_LE(counts[i], shapes[i].numel());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SparsityGrid, DistributionGlobalSparsity,
    ::testing::Combine(::testing::Values(0.5, 0.8, 0.9, 0.95, 0.98),
                       ::testing::Values(0, 1, 2)));

TEST(Distribution, InvalidSparsityThrows) {
  const std::vector<tensor::Shape> shapes{tensor::Shape({4, 4})};
  EXPECT_THROW(
      sparse::layer_densities(shapes, 1.0, sparse::DistributionKind::kErk),
      util::CheckError);
  EXPECT_THROW(
      sparse::layer_densities({}, 0.5, sparse::DistributionKind::kErk),
      util::CheckError);
}

TEST(SparseModel, AchievesTargetSparsity) {
  util::Rng rng(5);
  models::MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = {64, 64};
  cfg.out_features = 10;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.9, sparse::DistributionKind::kErk, rng);
  EXPECT_NEAR(sm.global_sparsity(), 0.9, 1e-3);
  EXPECT_EQ(sm.num_layers(), 3u);  // three linear weights
}

TEST(SparseModel, ZeroSparsityIsDense) {
  util::Rng rng(6);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.0, sparse::DistributionKind::kErk, rng);
  EXPECT_DOUBLE_EQ(sm.global_density(), 1.0);
}

TEST(SparseModel, MaskedValuesAreZeroAfterConstruction) {
  util::Rng rng(7);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.8, sparse::DistributionKind::kUniform, rng);
  EXPECT_EQ(sparse::validate_invariants(sm), "");
}

TEST(SparseModel, ApplyMasksToGrads) {
  util::Rng rng(8);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.5, sparse::DistributionKind::kUniform, rng);
  for (auto& layer : sm.layers()) {
    layer.param().grad.fill(1.0f);
  }
  sm.apply_masks_to_grads();
  for (auto& layer : sm.layers()) {
    const auto& mask = layer.mask().tensor();
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      EXPECT_EQ(layer.param().grad[i], mask[i]);
    }
  }
}

TEST(SparseModel, CountersInitializedToMask) {
  util::Rng rng(9);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.7, sparse::DistributionKind::kUniform, rng);
  // Constructor runs N ← M once.
  for (const auto& layer : sm.layers()) {
    const auto& mask = layer.mask().tensor();
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      EXPECT_EQ(layer.counter()[i], mask[i]);
    }
  }
}

TEST(SparseModel, AccumulateAndResetCounters) {
  util::Rng rng(10);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.5, sparse::DistributionKind::kUniform, rng);
  sm.accumulate_counters();
  for (const auto& layer : sm.layers()) {
    const auto& mask = layer.mask().tensor();
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      EXPECT_EQ(layer.counter()[i], 2.0f * mask[i]);
    }
  }
  sm.reset_counters_to_masks();
  for (const auto& layer : sm.layers()) {
    const auto& mask = layer.mask().tensor();
    for (std::size_t i = 0; i < mask.numel(); ++i) {
      EXPECT_EQ(layer.counter()[i], mask[i]);
    }
  }
}

TEST(SparseModel, LayerReportConsistent) {
  util::Rng rng(11);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.9, sparse::DistributionKind::kErk, rng);
  const auto report = sm.layer_report();
  ASSERT_EQ(report.size(), sm.num_layers());
  std::size_t total_active = 0;
  for (const auto& r : report) {
    EXPECT_NEAR(r.density,
                static_cast<double>(r.active) / static_cast<double>(r.numel),
                1e-12);
    total_active += r.active;
  }
  EXPECT_EQ(total_active, sm.total_active());
}

TEST(SparseModel, InvalidSparsityThrows) {
  util::Rng rng(12);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  EXPECT_THROW(
      sparse::SparseModel(model, 1.0, sparse::DistributionKind::kErk, rng),
      util::CheckError);
}

TEST(Exploration, StartsAtInitialDensity) {
  util::Rng rng(13);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.9, sparse::DistributionKind::kUniform, rng);
  sparse::ExplorationTracker tracker(sm);
  EXPECT_NEAR(tracker.exploration_rate(), 0.1, 0.01);
}

TEST(Exploration, GrowsMonotonicallyWithNewMasks) {
  util::Rng rng(14);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.9, sparse::DistributionKind::kUniform, rng);
  sparse::ExplorationTracker tracker(sm);
  double prev = tracker.exploration_rate();
  for (int round = 0; round < 5; ++round) {
    // Move every layer's mask to a fresh random support.
    util::Rng mask_rng(static_cast<std::uint64_t>(round + 100));
    for (auto& layer : sm.layers()) {
      layer.mask() = sparse::Mask::random(layer.param().value.shape(),
                                          layer.num_active(), mask_rng);
    }
    tracker.observe(sm);
    const double cur = tracker.exploration_rate();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_GT(prev, 0.3);  // five fresh 10%-masks must cover well over 30%
}

TEST(Exploration, PerLayerRatesMatchGlobal) {
  util::Rng rng(15);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.8, sparse::DistributionKind::kUniform, rng);
  sparse::ExplorationTracker tracker(sm);
  const auto rates = tracker.per_layer_rates();
  EXPECT_EQ(rates.size(), sm.num_layers());
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Stats, ValidateDetectsNonzeroMaskedWeight) {
  util::Rng rng(16);
  models::MlpConfig cfg;
  models::Mlp model(cfg, rng);
  sparse::SparseModel sm(model, 0.5, sparse::DistributionKind::kUniform, rng);
  // Corrupt: set a masked weight nonzero.
  auto& layer = sm.layer(0);
  const auto inactive = layer.mask().inactive_indices();
  ASSERT_FALSE(inactive.empty());
  layer.param().value[inactive[0]] = 1.0f;
  EXPECT_NE(sparse::validate_invariants(sm), "");
}

TEST(Stats, TopologyLogAggregates) {
  sparse::TopologyLog log;
  log.record({1, 100, 10, 10, 4, 0.2});
  log.record({2, 200, 8, 8, 2, 0.3});
  EXPECT_EQ(log.num_rounds(), 2u);
  EXPECT_EQ(log.total_dropped(), 18u);
  EXPECT_EQ(log.total_grown(), 18u);
  EXPECT_NEAR(log.never_seen_growth_fraction(), 6.0 / 18.0, 1e-12);
}

TEST(Stats, EmptyLogFractionIsZero) {
  sparse::TopologyLog log;
  EXPECT_DOUBLE_EQ(log.never_seen_growth_fraction(), 0.0);
}

}  // namespace
}  // namespace dstee
