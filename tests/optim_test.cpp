// Optimizer and LR-schedule tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "nn/linear.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

nn::Parameter make_param(std::initializer_list<float> values,
                         bool sparsifiable = true) {
  nn::Parameter p("p", tensor::Shape({values.size()}), sparsifiable);
  std::size_t i = 0;
  for (const float v : values) p.value[i++] = v;
  return p;
}

TEST(Sgd, PlainStepIsGradientDescent) {
  nn::Parameter p = make_param({1.0f, 2.0f});
  p.grad[0] = 0.5f;
  p.grad[1] = -1.0f;
  optim::Sgd::Config cfg;
  cfg.lr = 0.1;
  cfg.momentum = 0.0;
  optim::Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6);
  EXPECT_NEAR(p.value[1], 2.0f + 0.1f * 1.0f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Parameter p = make_param({0.0f});
  optim::Sgd::Config cfg;
  cfg.lr = 1.0;
  cfg.momentum = 0.5;
  optim::Sgd opt({&p}, cfg);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6);
  p.grad[0] = 1.0f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6);
}

TEST(Sgd, NesterovLookahead) {
  nn::Parameter p = make_param({0.0f});
  optim::Sgd::Config cfg;
  cfg.lr = 1.0;
  cfg.momentum = 0.5;
  cfg.nesterov = true;
  optim::Sgd opt({&p}, cfg);
  p.grad[0] = 1.0f;
  opt.step();  // v=1; update = g + mu*v = 1.5
  EXPECT_NEAR(p.value[0], -1.5f, 1e-6);
}

TEST(Sgd, WeightDecayAppliesToSparsifiableOnly) {
  nn::Parameter w = make_param({1.0f}, /*sparsifiable=*/true);
  nn::Parameter b = make_param({1.0f}, /*sparsifiable=*/false);
  optim::Sgd::Config cfg;
  cfg.lr = 0.1;
  cfg.momentum = 0.0;
  cfg.weight_decay = 1.0;
  optim::Sgd opt({&w, &b}, cfg);
  opt.step();  // grads are zero → only decay acts
  EXPECT_NEAR(w.value[0], 1.0f - 0.1f, 1e-6);
  EXPECT_NEAR(b.value[0], 1.0f, 1e-6);
}

TEST(Sgd, ResetStateClearsMomentumEntry) {
  nn::Parameter p = make_param({0.0f, 0.0f});
  optim::Sgd::Config cfg;
  cfg.lr = 1.0;
  cfg.momentum = 0.9;
  optim::Sgd opt({&p}, cfg);
  p.grad[0] = 1.0f;
  p.grad[1] = 1.0f;
  opt.step();
  opt.reset_state_at(0, 0);  // kill momentum on element 0
  p.grad[0] = 0.0f;
  p.grad[1] = 0.0f;
  const float before0 = p.value[0], before1 = p.value[1];
  opt.step();  // element 1 still coasts on momentum, element 0 does not
  EXPECT_EQ(p.value[0], before0);
  EXPECT_LT(p.value[1], before1);
}

TEST(Sgd, LearningRateSetter) {
  nn::Parameter p = make_param({0.0f});
  optim::Sgd::Config cfg;
  cfg.lr = 0.1;
  optim::Sgd opt({&p}, cfg);
  opt.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.01);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize (w - 3)^2 — gradient 2(w-3)
  nn::Parameter p = make_param({0.0f});
  optim::Sgd::Config cfg;
  cfg.lr = 0.1;
  cfg.momentum = 0.9;
  optim::Sgd opt({&p}, cfg);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2);
}

TEST(Adam, ConvergesOnQuadratic) {
  nn::Parameter p = make_param({0.0f});
  optim::Adam::Config cfg;
  cfg.lr = 0.1;
  optim::Adam opt({&p}, cfg);
  for (int i = 0; i < 300; ++i) {
    p.grad[0] = 2.0f * (p.value[0] + 5.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], -5.0f, 5e-2);
}

TEST(Adam, FirstStepIsLrSized) {
  nn::Parameter p = make_param({0.0f});
  optim::Adam::Config cfg;
  cfg.lr = 0.01;
  optim::Adam opt({&p}, cfg);
  p.grad[0] = 123.0f;  // Adam normalizes magnitude away on step 1
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4);
}

TEST(Adam, ResetStateClearsMoments) {
  nn::Parameter p = make_param({0.0f});
  optim::Adam::Config cfg;
  optim::Adam opt({&p}, cfg);
  p.grad[0] = 1.0f;
  opt.step();
  opt.reset_state_at(0, 0);
  p.grad[0] = 0.0f;
  const float before = p.value[0];
  opt.step();
  EXPECT_EQ(p.value[0], before);
}

TEST(Optimizer, RejectsEmptyOrNullParams) {
  optim::Sgd::Config cfg;
  EXPECT_THROW(optim::Sgd({}, cfg), util::CheckError);
  EXPECT_THROW(optim::Sgd({nullptr}, cfg), util::CheckError);
}

TEST(LrSchedule, ConstantIsConstant) {
  optim::ConstantLr s(0.1);
  EXPECT_DOUBLE_EQ(s.lr_at(0), 0.1);
  EXPECT_DOUBLE_EQ(s.lr_at(99999), 0.1);
  EXPECT_THROW(optim::ConstantLr(0.0), util::CheckError);
}

TEST(LrSchedule, StepDecays) {
  optim::StepLr s(1.0, 10, 0.5);
  EXPECT_DOUBLE_EQ(s.lr_at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.lr_at(9), 1.0);
  EXPECT_DOUBLE_EQ(s.lr_at(10), 0.5);
  EXPECT_DOUBLE_EQ(s.lr_at(25), 0.25);
}

TEST(LrSchedule, CosineEndpoints) {
  optim::CosineAnnealingLr s(0.1, 100);
  EXPECT_NEAR(s.lr_at(0), 0.1, 1e-12);
  EXPECT_NEAR(s.lr_at(50), 0.05, 1e-9);
  EXPECT_NEAR(s.lr_at(100), 0.0, 1e-12);
  EXPECT_NEAR(s.lr_at(500), 0.0, 1e-12);  // clamps past the horizon
}

TEST(LrSchedule, CosineWithFloor) {
  optim::CosineAnnealingLr s(0.1, 100, 0.01);
  EXPECT_NEAR(s.lr_at(100), 0.01, 1e-12);
  EXPECT_GT(s.lr_at(50), 0.01);
}

TEST(LrSchedule, CosineIsMonotoneNonincreasing) {
  optim::CosineAnnealingLr s(0.1, 1000);
  double prev = s.lr_at(0);
  for (std::size_t t = 1; t <= 1000; t += 50) {
    const double cur = s.lr_at(t);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(LrSchedule, WarmupRampsThenDelegates) {
  auto inner = std::make_unique<optim::ConstantLr>(0.1);
  optim::WarmupLr s(std::move(inner), 10);
  EXPECT_NEAR(s.lr_at(0), 0.01, 1e-9);
  EXPECT_NEAR(s.lr_at(4), 0.05, 1e-9);
  EXPECT_NEAR(s.lr_at(10), 0.1, 1e-9);
  EXPECT_NEAR(s.lr_at(1000), 0.1, 1e-9);
}

TEST(LrSchedule, InvalidConfigsThrow) {
  EXPECT_THROW(optim::CosineAnnealingLr(0.1, 0), util::CheckError);
  EXPECT_THROW(optim::CosineAnnealingLr(0.1, 10, 0.2), util::CheckError);
  EXPECT_THROW(optim::StepLr(1.0, 0, 0.5), util::CheckError);
  EXPECT_THROW(optim::WarmupLr(nullptr, 5), util::CheckError);
}

}  // namespace
}  // namespace dstee
