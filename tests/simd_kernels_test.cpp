// Kernel-backend tests: the registry contract (names, CPUID gating, loud
// failure on unknown backends) and the bit-identity guarantee — every
// AVX2 kernel must reproduce the scalar reference EXACTLY (tensor::equals,
// not allclose) across batch sizes that exercise full 8-wide vector
// bodies, sub-register tails, and row-slice boundaries that do not align
// with the vector width. The int8 quantizer's error bound (≤ scale/2 per
// stored value) is pinned here too, next to the kernels that consume it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/epilogue.hpp"
#include "kernels/simd/backend.hpp"
#include "sparse/csr.hpp"
#include "sparse/qcsr.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using kernels::ActKind;
using kernels::Epilogue;
using kernels::simd::KernelBackend;
using testing::random_tensor;

/// ~40%-dense CSR test matrix (unit-normal entries, |v| > 0.8 kept).
sparse::CsrMatrix sparse_csr(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  return sparse::CsrMatrix::from_dense(
      random_tensor(tensor::Shape({rows, cols}), seed), 0.8f);
}

/// Skips the enclosing test when the host/build cannot run AVX2 kernels.
#define REQUIRE_AVX2(var)                                     \
  const KernelBackend* var = kernels::simd::avx2_backend();   \
  if ((var) == nullptr) {                                     \
    GTEST_SKIP() << "AVX2 backend unavailable on this host";  \
  }

/// The epilogue shapes the fused serve path produces, minus the pointer
/// operands (attached per test from locally-owned storage).
std::vector<Epilogue> activation_epilogues() {
  std::vector<Epilogue> eps;
  eps.emplace_back();  // identity
  for (const ActKind act : {ActKind::kRelu, ActKind::kLeakyRelu,
                            ActKind::kSigmoid, ActKind::kTanh}) {
    Epilogue ep;
    ep.has_act = true;
    ep.act = act;
    eps.push_back(ep);
  }
  return eps;
}

TEST(KernelBackend, RegistryNamesAndLookup) {
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_FALSE(scalar.is_simd);
  EXPECT_NE(scalar.spmm_rows, nullptr);
  EXPECT_NE(scalar.spmm_cols, nullptr);
  EXPECT_NE(scalar.qspmm_rows, nullptr);
  EXPECT_NE(scalar.qspmm_cols, nullptr);
  EXPECT_NE(scalar.epilogue_range, nullptr);

  EXPECT_EQ(kernels::simd::find_backend("scalar"), &scalar);
  EXPECT_EQ(kernels::simd::find_backend("warp9"), nullptr);
  EXPECT_EQ(kernels::simd::find_backend(""), nullptr);

  const auto names = kernels::simd::available_backends();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  const bool lists_avx2 =
      std::find(names.begin(), names.end(), "avx2") != names.end();
  EXPECT_EQ(lists_avx2, kernels::simd::avx2_backend() != nullptr);

  const KernelBackend* avx2 = kernels::simd::avx2_backend();
  if (avx2 != nullptr) {
    EXPECT_STREQ(avx2->name, "avx2");
    EXPECT_TRUE(avx2->is_simd);
    EXPECT_TRUE(kernels::simd::cpu_has_avx2());
    EXPECT_EQ(kernels::simd::find_backend("avx2"), avx2);
  }
}

TEST(KernelBackend, SetActiveFailsLoudlyAndRoundTrips) {
  const std::string prev = kernels::simd::active_backend().name;
  EXPECT_THROW(kernels::simd::set_active_backend("warp9"), util::CheckError);
  // A failed override must not change the active backend.
  EXPECT_EQ(std::string(kernels::simd::active_backend().name), prev);

  kernels::simd::set_active_backend("scalar");
  EXPECT_STREQ(kernels::simd::active_backend().name, "scalar");
  kernels::simd::set_active_backend(prev);
  EXPECT_EQ(std::string(kernels::simd::active_backend().name), prev);
}

TEST(KernelBackend, SpmmBitIdenticalAcrossBatches) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  // 37 rows / 29 cols: neither axis is a multiple of the vector width.
  const auto csr = sparse_csr(37, 29, 601);
  for (const std::size_t batch : {1u, 3u, 8u, 17u}) {
    const auto x = random_tensor(tensor::Shape({batch, 29}), 602 + batch);
    const auto ref = csr.spmm(x, {}, {}, &scalar);
    const auto got = csr.spmm(x, {}, {}, avx2);
    EXPECT_TRUE(got.equals(ref)) << "batch " << batch;
  }
}

TEST(KernelBackend, SpmmEpilogueVariantsBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  const std::size_t rows = 21, cols = 13, batch = 17;
  const auto csr = sparse_csr(rows, cols, 611);
  const auto x = random_tensor(tensor::Shape({batch, cols}), 612);
  const auto bias = random_tensor(tensor::Shape({rows}), 613);
  const auto residual = random_tensor(tensor::Shape({batch, rows}), 614);
  for (Epilogue ep : activation_epilogues()) {
    ep.bias = bias.raw();
    ep.residual = residual.raw();
    ep.residual_stride = rows;
    const auto ref = csr.spmm(x, {}, ep, &scalar);
    const auto got = csr.spmm(x, {}, ep, avx2);
    EXPECT_TRUE(got.equals(ref))
        << "act " << (ep.has_act ? static_cast<int>(ep.act) : -1);
  }
}

TEST(KernelBackend, RowSliceBoundariesBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  const std::size_t rows = 37, cols = 19;
  const auto csr = sparse_csr(rows, cols, 621);
  const auto x = random_tensor(tensor::Shape({17, cols}), 622);
  const auto full = csr.spmm(x, {}, {}, &scalar);
  const std::size_t bounds[][2] = {{0, 1}, {3, 11}, {5, 37}, {8, 16},
                                   {0, 37}, {36, 37}};
  for (const auto& b : bounds) {
    const auto slice = csr.row_slice(b[0], b[1]);
    const auto ref = slice.spmm(x, {}, {}, &scalar);
    const auto got = slice.spmm(x, {}, {}, avx2);
    EXPECT_TRUE(got.equals(ref)) << "rows [" << b[0] << ", " << b[1] << ")";
    // And the slice tiles the parent's result exactly.
    for (std::size_t n = 0; n < 17; ++n) {
      for (std::size_t r = b[0]; r < b[1]; ++r) {
        ASSERT_EQ(got[n * slice.rows() + (r - b[0])], full[n * rows + r]);
      }
    }
  }
}

TEST(KernelBackend, SlicedStridedResidualBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  // The PartitionRows layout: a slice of a 37-wide output writes its own
  // row range while the residual pointer is pre-offset and strides over
  // the FULL width.
  const std::size_t rows = 37, cols = 19, batch = 9, r0 = 5, r1 = 20;
  const auto csr = sparse_csr(rows, cols, 631);
  const auto slice = csr.row_slice(r0, r1);
  const auto x = random_tensor(tensor::Shape({batch, cols}), 632);
  const auto bias = random_tensor(tensor::Shape({rows}), 633);
  const auto residual = random_tensor(tensor::Shape({batch, rows}), 634);
  Epilogue ep;
  ep.bias = bias.raw() + r0;
  ep.residual = residual.raw() + r0;
  ep.residual_stride = rows;
  ep.has_act = true;
  ep.act = ActKind::kRelu;
  const auto ref = slice.spmm(x, {}, ep, &scalar);
  const auto got = slice.spmm(x, {}, ep, avx2);
  EXPECT_TRUE(got.equals(ref));
}

TEST(KernelBackend, SpmmColsBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  const std::size_t rows = 14, cols = 23;
  const auto csr = sparse_csr(rows, cols, 641);
  const auto bias = random_tensor(tensor::Shape({rows}), 642);
  for (const std::size_t n : {1u, 5u, 8u, 19u}) {
    const auto b = random_tensor(tensor::Shape({cols, n}), 643 + n);
    const auto residual = random_tensor(tensor::Shape({rows, n}), 644 + n);
    for (Epilogue ep : activation_epilogues()) {
      ep.bias = bias.raw();
      ep.residual = residual.raw();
      std::vector<float> ref(rows * n), got(rows * n);
      csr.spmm_cols_into(b, ref.data(), ep, &scalar);
      csr.spmm_cols_into(b, got.data(), ep, avx2);
      EXPECT_EQ(got, ref) << "n " << n << ", act "
                          << (ep.has_act ? static_cast<int>(ep.act) : -1);
    }
  }
}

TEST(KernelBackend, QuantizedSpmmBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  const std::size_t rows = 37, cols = 29;
  const auto q = sparse::QCsrMatrix::quantize(sparse_csr(rows, cols, 651));
  const auto bias = random_tensor(tensor::Shape({rows}), 652);
  for (const std::size_t batch : {1u, 3u, 8u, 17u}) {
    const auto x = random_tensor(tensor::Shape({batch, cols}), 653 + batch);
    EXPECT_TRUE(q.spmm(x, {}, {}, avx2).equals(q.spmm(x, {}, {}, &scalar)))
        << "batch " << batch;
    Epilogue ep;
    ep.bias = bias.raw();
    ep.has_act = true;
    ep.act = ActKind::kRelu;
    EXPECT_TRUE(q.spmm(x, {}, ep, avx2).equals(q.spmm(x, {}, ep, &scalar)))
        << "fused, batch " << batch;
  }
  // Quantized slices at unaligned boundaries, like the fp32 path.
  const auto x = random_tensor(tensor::Shape({17, cols}), 658);
  for (const std::size_t r0 : {std::size_t{3}, std::size_t{8}}) {
    const auto slice = q.row_slice(r0, 31);
    EXPECT_TRUE(
        slice.spmm(x, {}, {}, avx2).equals(slice.spmm(x, {}, {}, &scalar)));
  }
}

TEST(KernelBackend, QuantizedSpmmColsBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  const std::size_t rows = 14, cols = 23, n = 19;
  const auto q = sparse::QCsrMatrix::quantize(sparse_csr(rows, cols, 661));
  const auto b = random_tensor(tensor::Shape({cols, n}), 662);
  std::vector<float> ref(rows * n), got(rows * n);
  q.spmm_cols_into(b, ref.data(), {}, &scalar);
  q.spmm_cols_into(b, got.data(), {}, avx2);
  EXPECT_EQ(got, ref);
}

TEST(KernelBackend, EpilogueRangeBitIdentical) {
  REQUIRE_AVX2(avx2);
  const KernelBackend& scalar = kernels::simd::scalar_backend();
  for (const std::size_t numel : {1u, 7u, 8u, 9u, 64u, 100u}) {
    const auto in = random_tensor(
        tensor::Shape({numel}), 671 + numel);
    const auto residual = random_tensor(tensor::Shape({numel}), 672 + numel);
    for (Epilogue ep : activation_epilogues()) {
      ep.residual = residual.raw();
      const auto ref = kernels::apply_epilogue(in, ep, {}, &scalar);
      const auto got = kernels::apply_epilogue(in, ep, {}, avx2);
      EXPECT_TRUE(got.equals(ref))
          << "numel " << numel << ", act "
          << (ep.has_act ? static_cast<int>(ep.act) : -1);
    }
  }
}

TEST(QCsrMatrix, QuantizePreservesPatternAndBoundsError) {
  const auto csr = sparse_csr(23, 17, 681);
  const auto q = sparse::QCsrMatrix::quantize(csr);
  // The sparsity pattern survives exactly — only values change.
  EXPECT_EQ(q.rows(), csr.rows());
  EXPECT_EQ(q.cols(), csr.cols());
  EXPECT_EQ(q.row_ptr(), csr.row_ptr());
  EXPECT_EQ(q.col_idx(), csr.col_idx());
  ASSERT_EQ(q.scales().size(), q.rows());

  for (std::size_t r = 0; r < q.rows(); ++r) {
    float amax = 0.0f;
    for (std::size_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      amax = std::max(amax, std::abs(csr.values()[k]));
    }
    const float scale = q.scales()[r];
    if (csr.row_ptr()[r] == csr.row_ptr()[r + 1]) continue;  // checked below
    EXPECT_NEAR(scale, amax / 127.0f, 1e-6f * std::max(1.0f, amax));
    for (std::size_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      // Round-to-nearest: per stored value the dequantization error is at
      // most half a quantization step.
      const float dequant = scale * static_cast<float>(q.values()[k]);
      EXPECT_LE(std::abs(dequant - csr.values()[k]),
                0.5f * scale + 1e-6f)
          << "row " << r << " entry " << k;
    }
  }
}

TEST(QCsrMatrix, AllZeroRowGetsUnitScale) {
  // Row 1 stores nothing (from_dense drops exact zeros); its scale must
  // stay 1.0 so dequantization is well-defined.
  tensor::Tensor dense(tensor::Shape({3, 4}));
  for (std::size_t j = 0; j < 4; ++j) {
    dense[0 * 4 + j] = 1.0f + static_cast<float>(j);
    dense[2 * 4 + j] = -0.5f * static_cast<float>(j + 1);
  }
  const auto csr = sparse::CsrMatrix::from_dense(dense, 0.0f);
  const auto q = sparse::QCsrMatrix::quantize(csr);
  ASSERT_EQ(q.rows(), 3u);
  EXPECT_EQ(q.row_ptr()[1], q.row_ptr()[2]);  // row 1 is empty
  EXPECT_EQ(q.scales()[1], 1.0f);
  // Dense round trip stays within half a step of the source everywhere.
  const auto round_trip = q.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_LE(std::abs(round_trip[r * 4 + j] - dense[r * 4 + j]),
                0.5f * q.scales()[r] + 1e-6f);
    }
  }
}

}  // namespace
}  // namespace dstee
