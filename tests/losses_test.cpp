// Loss function tests: values, gradients, numerical stability.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/losses.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  nn::SoftmaxCrossEntropy loss;
  tensor::Tensor logits({4, 10});  // all zeros → uniform softmax
  std::vector<std::size_t> labels{0, 3, 7, 9};
  const double l = loss.forward(logits, labels);
  EXPECT_NEAR(l, std::log(10.0), 1e-6);
}

TEST(CrossEntropy, ConfidentCorrectPredictionLowLoss) {
  nn::SoftmaxCrossEntropy loss;
  tensor::Tensor logits({1, 3});
  logits[0] = 20.0f;  // class 0 dominant
  const std::vector<std::size_t> labels{0};
  EXPECT_LT(loss.forward(logits, labels), 1e-6);
  const std::vector<std::size_t> wrong{2};
  EXPECT_GT(loss.forward(logits, wrong), 10.0);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
  nn::SoftmaxCrossEntropy loss;
  tensor::Tensor logits(tensor::Shape({1, 2}), {1.0f, 2.0f});
  const std::vector<std::size_t> labels{1};
  loss.forward(logits, labels);
  const auto grad = loss.backward();
  const double p0 = std::exp(1.0) / (std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(grad[0], p0, 1e-5);
  EXPECT_NEAR(grad[1], (1.0 - p0) - 1.0, 1e-5);
}

TEST(CrossEntropy, GradientMatchesFiniteDifferences) {
  nn::SoftmaxCrossEntropy loss;
  auto logits = testing::random_tensor(tensor::Shape({3, 5}), 1);
  const std::vector<std::size_t> labels{4, 0, 2};
  loss.forward(logits, labels);
  const auto grad = loss.backward();
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float eps = 1e-2f;
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double plus = loss.forward(logits, labels);
    logits[i] = saved - eps;
    const double minus = loss.forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2.0 * eps), 5e-3) << "index " << i;
  }
}

TEST(CrossEntropy, ProbabilitiesSumToOne) {
  nn::SoftmaxCrossEntropy loss;
  const auto logits = testing::random_tensor(tensor::Shape({4, 7}), 2, 3.0f);
  const std::vector<std::size_t> labels{0, 1, 2, 3};
  loss.forward(logits, labels);
  const auto& probs = loss.probabilities();
  for (std::size_t n = 0; n < 4; ++n) {
    double row = 0.0;
    for (std::size_t c = 0; c < 7; ++c) row += probs[n * 7 + c];
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(CrossEntropy, StableUnderLargeLogits) {
  nn::SoftmaxCrossEntropy loss;
  tensor::Tensor logits(tensor::Shape({1, 2}), {1000.0f, -1000.0f});
  const std::vector<std::size_t> labels{0};
  const double l = loss.forward(logits, labels);
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, 0.0, 1e-6);
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
  nn::SoftmaxCrossEntropy loss;
  tensor::Tensor logits({1, 3});
  const std::vector<std::size_t> labels{3};
  EXPECT_THROW(loss.forward(logits, labels), util::CheckError);
}

TEST(CrossEntropy, BatchSizeMismatchThrows) {
  nn::SoftmaxCrossEntropy loss;
  tensor::Tensor logits({2, 3});
  const std::vector<std::size_t> labels{0};
  EXPECT_THROW(loss.forward(logits, labels), util::CheckError);
}

TEST(Bce, MatchesClosedForm) {
  nn::BCEWithLogits loss;
  tensor::Tensor logits(tensor::Shape({2}), {0.0f, 0.0f});
  const std::vector<float> targets{1.0f, 0.0f};
  EXPECT_NEAR(loss.forward(logits, targets), std::log(2.0), 1e-6);
}

TEST(Bce, StableForExtremeLogits) {
  nn::BCEWithLogits loss;
  tensor::Tensor logits(tensor::Shape({2}), {500.0f, -500.0f});
  const std::vector<float> targets{1.0f, 0.0f};
  const double l = loss.forward(logits, targets);
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_NEAR(l, 0.0, 1e-6);
}

TEST(Bce, GradientMatchesFiniteDifferences) {
  nn::BCEWithLogits loss;
  auto logits = testing::random_tensor(tensor::Shape({6}), 3);
  const std::vector<float> targets{1, 0, 1, 1, 0, 0};
  loss.forward(logits, targets);
  const auto grad = loss.backward();
  for (std::size_t i = 0; i < 6; ++i) {
    const float eps = 1e-3f;
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double plus = loss.forward(logits, targets);
    logits[i] = saved - eps;
    const double minus = loss.forward(logits, targets);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (plus - minus) / (2.0 * eps), 1e-4);
  }
}

TEST(Bce, RejectsNonBinaryTargets) {
  nn::BCEWithLogits loss;
  tensor::Tensor logits({1});
  const std::vector<float> targets{0.5f};
  EXPECT_THROW(loss.forward(logits, targets), util::CheckError);
}

TEST(Bce, AcceptsColumnVectorLogits) {
  nn::BCEWithLogits loss;
  tensor::Tensor logits({3, 1});
  const std::vector<float> targets{1, 0, 1};
  EXPECT_NO_THROW(loss.forward(logits, targets));
  EXPECT_EQ(loss.backward().shape(), logits.shape());
}

TEST(Mse, ValueAndGradient) {
  nn::MeanSquaredError loss;
  tensor::Tensor pred(tensor::Shape({2}), {1.0f, 3.0f});
  tensor::Tensor target(tensor::Shape({2}), {0.0f, 1.0f});
  EXPECT_NEAR(loss.forward(pred, target), (1.0 + 4.0) / 2.0, 1e-6);
  const auto grad = loss.backward();
  EXPECT_NEAR(grad[0], 2.0f * 1.0f / 2.0f, 1e-6);
  EXPECT_NEAR(grad[1], 2.0f * 2.0f / 2.0f, 1e-6);
}

TEST(Mse, ShapeMismatchThrows) {
  nn::MeanSquaredError loss;
  tensor::Tensor a({2}), b({3});
  EXPECT_THROW(loss.forward(a, b), util::CheckError);
}

}  // namespace
}  // namespace dstee
