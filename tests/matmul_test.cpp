// Unit tests for matmul kernels, checked against a naive reference.
#include <gtest/gtest.h>

#include "tensor/matmul.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

tensor::Tensor naive_matmul(const tensor::Tensor& a, const tensor::Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  tensor::Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Matmul, SmallKnownProduct) {
  tensor::Tensor a(tensor::Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  tensor::Tensor b(tensor::Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  const auto c = tensor::matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, MatchesNaiveOnRandom) {
  const auto a = testing::random_tensor(tensor::Shape({17, 23}), 1);
  const auto b = testing::random_tensor(tensor::Shape({23, 11}), 2);
  EXPECT_TRUE(tensor::matmul(a, b).allclose(naive_matmul(a, b), 1e-3f));
}

TEST(Matmul, InnerDimMismatchThrows) {
  tensor::Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(tensor::matmul(a, b), util::CheckError);
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  const auto a = testing::random_tensor(tensor::Shape({7, 13}), 3);
  const auto b = testing::random_tensor(tensor::Shape({5, 13}), 4);
  const auto expect = naive_matmul(a, tensor::transpose(b));
  EXPECT_TRUE(tensor::matmul_nt(a, b).allclose(expect, 1e-3f));
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  const auto a = testing::random_tensor(tensor::Shape({13, 7}), 5);
  const auto b = testing::random_tensor(tensor::Shape({13, 5}), 6);
  const auto expect = naive_matmul(tensor::transpose(a), b);
  EXPECT_TRUE(tensor::matmul_tn(a, b).allclose(expect, 1e-3f));
}

TEST(Matmul, AccumulateAddsIntoC) {
  const auto a = testing::random_tensor(tensor::Shape({4, 6}), 7);
  const auto b = testing::random_tensor(tensor::Shape({6, 3}), 8);
  tensor::Tensor c({4, 3});
  c.fill(1.0f);
  tensor::matmul_accumulate(a, b, c);
  auto expect = naive_matmul(a, b);
  for (std::size_t i = 0; i < expect.numel(); ++i) expect[i] += 1.0f;
  EXPECT_TRUE(c.allclose(expect, 1e-3f));
}

TEST(Matmul, AccumulateShapeChecks) {
  tensor::Tensor a({2, 3}), b({3, 4}), c({2, 5});
  EXPECT_THROW(tensor::matmul_accumulate(a, b, c), util::CheckError);
}

TEST(Matmul, TransposeRoundTrip) {
  const auto a = testing::random_tensor(tensor::Shape({5, 9}), 9);
  EXPECT_TRUE(tensor::transpose(tensor::transpose(a)).equals(a));
}

TEST(Matmul, ZeroRowsSkipped) {
  // gemm's zero-skip fast path must not change results.
  tensor::Tensor a(tensor::Shape({2, 2}), {0, 0, 1, 2});
  tensor::Tensor b(tensor::Shape({2, 2}), {3, 4, 5, 6});
  const auto c = tensor::matmul(a, b);
  EXPECT_EQ(c.at2(0, 0), 0.0f);
  EXPECT_EQ(c.at2(1, 0), 13.0f);
}

TEST(Matmul, RankChecks) {
  tensor::Tensor a({4}), b({4, 2});
  EXPECT_THROW(tensor::matmul(a, b), util::CheckError);
  EXPECT_THROW(tensor::transpose(a), util::CheckError);
}

}  // namespace
}  // namespace dstee
