// Unit tests for the util module: checks, RNG, strings, CSV, tables, env.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dstee {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(util::check(true, "fine")); }

TEST(Check, ThrowsOnFalseWithMessage) {
  try {
    util::check(false, "the message");
    FAIL() << "check(false) must throw";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

TEST(Check, FailAlwaysThrows) {
  EXPECT_THROW(util::fail("boom"), util::CheckError);
}

TEST(Check, CheckExprIncludesExpression) {
  try {
    util::check_expr(false, "a < b", "ordering violated");
    FAIL();
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("a < b"), std::string::npos);
    EXPECT_NE(what.find("ordering violated"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  util::Rng base(7);
  util::Rng f1 = base.fork("stream-a");
  util::Rng f2 = base.fork("stream-a");
  util::Rng f3 = base.fork("stream-b");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  util::Rng f1b = base.fork("stream-a");
  EXPECT_NE(f1b.next_u64(), f3.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  util::Rng a(9), b(9);
  (void)a.fork("x");
  (void)a.fork("y");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  util::Rng rng(17);
  std::vector<int> counts(10, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.2);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  util::Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), util::CheckError);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  util::Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  util::Rng rng(29);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  util::Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  util::Rng rng(37);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  util::Rng rng(41);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWholePopulation) {
  util::Rng rng(43);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  util::Rng rng(47);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), util::CheckError);
}

TEST(Rng, ShuffleKeepsElements) {
  util::Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(StringUtil, ToLower) { EXPECT_EQ(util::to_lower("AbC-D"), "abc-d"); }

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = util::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(util::trim("  x y  "), "x y");
  EXPECT_EQ(util::trim("\t\n"), "");
  EXPECT_EQ(util::trim(""), "");
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(util::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_fixed(93.8, 2), "93.80");
}

TEST(StringUtil, FormatMultiple) {
  EXPECT_EQ(util::format_multiple(0.23, 2), "0.23x");
}

TEST(StringUtil, FormatMeanStd) {
  EXPECT_EQ(util::format_mean_std(93.84, 0.09, 2), "93.84 +/- 0.09");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(util::starts_with("dst-ee", "dst"));
  EXPECT_FALSE(util::starts_with("dst", "dst-ee"));
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(util::csv_escape("plain"), "plain");
  EXPECT_EQ(util::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// Each test uses its own scratch dir: ctest -j runs every TEST as a
// separate process in the same working directory.
TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "test_csv_out_rows/rows.csv";
  {
    util::CsvWriter w(path, {"method", "acc"});
    w.write_row({"DST-EE", "93.84"});
    w.write_row({"RigL", "93.38"});
    EXPECT_EQ(w.rows_written(), 2u);
    w.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "method,acc");
  std::getline(in, line);
  EXPECT_EQ(line, "DST-EE,93.84");
  std::filesystem::remove_all("test_csv_out_rows");
}

TEST(Csv, RejectsWrongWidth) {
  util::CsvWriter w("test_csv_out_width/w.csv", {"a", "b"});
  EXPECT_THROW(w.write_row({"only-one"}), util::CheckError);
  std::filesystem::remove_all("test_csv_out_width");
}

TEST(Table, RendersAlignedCells) {
  util::Table t({"Method", "Acc"});
  t.add_row({"RigL", "93.38"});
  t.add_separator();
  t.add_row({"DST-EE", "93.84"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Method "), std::string::npos);
  EXPECT_NE(out.find("| DST-EE "), std::string::npos);
  // separator between the two data rows → at least 4 horizontal lines
  std::size_t lines = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++lines;
    pos += 3;
  }
  EXPECT_GE(lines, 4u);
}

TEST(Table, RejectsMismatchedRow) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), util::CheckError);
}

TEST(Env, FallbacksWhenUnset) {
  ::unsetenv("DSTEE_TEST_UNSET_VAR");
  EXPECT_EQ(util::env_string("DSTEE_TEST_UNSET_VAR", "dflt"), "dflt");
  EXPECT_EQ(util::env_int("DSTEE_TEST_UNSET_VAR", 12), 12);
  EXPECT_DOUBLE_EQ(util::env_double("DSTEE_TEST_UNSET_VAR", 2.5), 2.5);
}

TEST(Env, ReadsSetValues) {
  ::setenv("DSTEE_TEST_VAR", "41", 1);
  EXPECT_EQ(util::env_int("DSTEE_TEST_VAR", 0), 41);
  ::setenv("DSTEE_TEST_VAR", "2.75", 1);
  EXPECT_DOUBLE_EQ(util::env_double("DSTEE_TEST_VAR", 0.0), 2.75);
  ::unsetenv("DSTEE_TEST_VAR");
}

TEST(Env, ThrowsOnMalformedInteger) {
  ::setenv("DSTEE_TEST_VAR", "not-a-number", 1);
  EXPECT_THROW(util::env_int("DSTEE_TEST_VAR", 0), util::CheckError);
  ::unsetenv("DSTEE_TEST_VAR");
}

TEST(Timer, MeasuresNonNegativeTime) {
  util::Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace dstee
