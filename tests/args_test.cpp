// ArgParser tests (the CLI tool's flag handling).
#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

util::ArgParser make_parser() {
  util::ArgParser p("test tool");
  p.add_flag("name", "a string", "default-name")
      .add_flag("count", "an int", "3")
      .add_flag("rate", "a double", "0.5")
      .add_flag("verbose", "a bool", "false")
      .add_flag("needed", "required flag", "", /*required=*/true);
  return p;
}

int parse(util::ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data()) ? 1 : 0;
}

TEST(Args, DefaultsApplyWhenUnset) {
  auto p = make_parser();
  EXPECT_EQ(parse(p, {"--needed", "x"}), 1);
  EXPECT_EQ(p.get_string("name"), "default-name");
  EXPECT_EQ(p.get_int("count"), 3);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_FALSE(p.was_set("name"));
  EXPECT_TRUE(p.was_set("needed"));
}

TEST(Args, SpaceAndEqualsForms) {
  auto p = make_parser();
  EXPECT_EQ(parse(p, {"--needed", "x", "--count", "7", "--rate=1.25"}), 1);
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.25);
}

TEST(Args, BooleanSpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    auto p = make_parser();
    EXPECT_EQ(parse(p, {"--needed", "x", "--verbose", spelling}), 1);
    EXPECT_TRUE(p.get_bool("verbose")) << spelling;
  }
  for (const char* spelling : {"false", "0", "no", "off"}) {
    auto p = make_parser();
    EXPECT_EQ(parse(p, {"--needed", "x", "--verbose", spelling}), 1);
    EXPECT_FALSE(p.get_bool("verbose")) << spelling;
  }
}

TEST(Args, HelpShortCircuits) {
  auto p = make_parser();
  EXPECT_EQ(parse(p, {"--help"}), 0);  // returns false, no required check
}

TEST(Args, UsageListsFlagsAndDefaults) {
  const auto p = make_parser();
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--count (default: 3)"), std::string::npos);
  EXPECT_NE(usage.find("--needed (required)"), std::string::npos);
}

TEST(Args, ErrorsOnUnknownFlag) {
  auto p = make_parser();
  EXPECT_THROW(parse(p, {"--needed", "x", "--bogus", "1"}),
               util::CheckError);
}

TEST(Args, ErrorsOnMissingValue) {
  auto p = make_parser();
  EXPECT_THROW(parse(p, {"--needed"}), util::CheckError);
}

TEST(Args, ErrorsOnMissingRequired) {
  auto p = make_parser();
  EXPECT_THROW(parse(p, {"--count", "4"}), util::CheckError);
}

TEST(Args, ErrorsOnMalformedNumbers) {
  auto p = make_parser();
  parse(p, {"--needed", "x", "--count", "seven"});
  EXPECT_THROW(p.get_int("count"), util::CheckError);
  auto p2 = make_parser();
  parse(p2, {"--needed", "x", "--verbose", "maybe"});
  EXPECT_THROW(p2.get_bool("verbose"), util::CheckError);
}

TEST(Args, ErrorsOnPositionalArgument) {
  auto p = make_parser();
  EXPECT_THROW(parse(p, {"positional"}), util::CheckError);
}

TEST(Args, DuplicateDeclarationRejected) {
  util::ArgParser p("x");
  p.add_flag("a", "first");
  EXPECT_THROW(p.add_flag("a", "again"), util::CheckError);
  EXPECT_THROW(p.add_flag("--dashed", "bad name"), util::CheckError);
}

TEST(Args, UndeclaredQueryRejected) {
  auto p = make_parser();
  parse(p, {"--needed", "x"});
  EXPECT_THROW(p.get_string("nope"), util::CheckError);
}

}  // namespace
}  // namespace dstee
