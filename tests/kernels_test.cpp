// src/kernels/ tests: the stateless compute kernels shared by nn/ forward
// paths and serve/ eval ops, checked against hand-computed references.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "kernels/activations.hpp"
#include "kernels/conv.hpp"
#include "kernels/pool.hpp"
#include "runtime/pool.hpp"
#include "nn/conv2d.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

TEST(Kernels, ReluMatchesReferenceAndFillsMask) {
  const tensor::Tensor x(tensor::Shape({2, 3}), {-1, 0, 2, 3, -4, 5});
  tensor::Tensor mask;
  const auto y = kernels::relu(x, &mask);
  EXPECT_TRUE(y.equals(
      tensor::Tensor(tensor::Shape({2, 3}), {0, 0, 2, 3, 0, 5})));
  EXPECT_TRUE(mask.equals(
      tensor::Tensor(tensor::Shape({2, 3}), {0, 0, 1, 1, 0, 1})));
  // Mask-less path computes the same activation.
  EXPECT_TRUE(kernels::relu(x).equals(y));
}

TEST(Kernels, AddReluFusesSumAndClampWithMask) {
  const tensor::Tensor a(tensor::Shape({4}), {1.0f, -2.0f, 3.0f, -1.0f});
  const tensor::Tensor b(tensor::Shape({4}), {-2.0f, 1.0f, 2.0f, 1.5f});
  tensor::Tensor mask;
  const auto y = kernels::add_relu(a, b, &mask);
  EXPECT_TRUE(y.equals(tensor::Tensor(tensor::Shape({4}), {0, 0, 5, 0.5f})));
  EXPECT_TRUE(mask.equals(tensor::Tensor(tensor::Shape({4}), {0, 0, 1, 1})));
  EXPECT_TRUE(kernels::add_relu(a, b).equals(y));
  EXPECT_THROW(
      kernels::add_relu(a, random_tensor(tensor::Shape({2, 2}), 1)),
      util::CheckError);
}

TEST(Kernels, LeakyReluSigmoidTanhMatchReference) {
  const tensor::Tensor x(tensor::Shape({4}), {-2.0f, -0.5f, 0.0f, 1.5f});
  const auto leaky = kernels::leaky_relu(x, 0.1f);
  EXPECT_NEAR(leaky[0], -0.2f, 1e-6f);
  EXPECT_NEAR(leaky[3], 1.5f, 1e-6f);
  const auto sig = kernels::sigmoid(x);
  const auto th = kernels::tanh(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sig[i], 1.0f / (1.0f + std::exp(-x[i])), 1e-6f);
    EXPECT_NEAR(th[i], std::tanh(x[i]), 1e-6f);
  }
}

TEST(Kernels, MaxPoolSelectsWindowMaximaAndArgmax) {
  // One 1×1×4×4 plane with known maxima per 2×2 window.
  const tensor::Tensor x(tensor::Shape({1, 1, 4, 4}),
                         {1, 2, 3, 4,
                          5, 6, 7, 8,
                          9, 1, 2, 3,
                          4, 5, 6, 7});
  std::vector<std::size_t> argmax;
  const auto y = kernels::maxpool2d(x, 2, 2, &argmax);
  EXPECT_TRUE(y.equals(tensor::Tensor(tensor::Shape({1, 1, 2, 2}),
                                      {6, 8, 9, 7})));
  EXPECT_EQ(argmax, (std::vector<std::size_t>{5, 7, 8, 15}));
  // Overlapping windows (stride 1).
  const auto y1 = kernels::maxpool2d(x, 2, 1);
  EXPECT_EQ(y1.shape(), tensor::Shape({1, 1, 3, 3}));
  EXPECT_FLOAT_EQ(y1[0], 6.0f);
}

TEST(Kernels, AvgAndGlobalPoolMatchReference) {
  const tensor::Tensor x(tensor::Shape({1, 2, 2, 2}),
                         {1, 2, 3, 4, 10, 20, 30, 40});
  const auto avg = kernels::avgpool2d(x, 2);
  EXPECT_TRUE(
      avg.equals(tensor::Tensor(tensor::Shape({1, 2, 1, 1}), {2.5f, 25.0f})));
  const auto gap = kernels::global_avg_pool(x);
  EXPECT_TRUE(
      gap.equals(tensor::Tensor(tensor::Shape({1, 2}), {2.5f, 25.0f})));
}

TEST(Kernels, PoolShapeChecks) {
  EXPECT_THROW(kernels::maxpool2d(random_tensor(tensor::Shape({2, 3}), 1), 2,
                                  2),
               util::CheckError);
  EXPECT_THROW(
      kernels::avgpool2d(random_tensor(tensor::Shape({1, 1, 3, 3}), 2), 4),
      util::CheckError);
  EXPECT_THROW(
      kernels::global_avg_pool(random_tensor(tensor::Shape({4, 4}), 3)),
      util::CheckError);
}

TEST(Kernels, Conv2dForwardMatchesModuleForward) {
  // The kernel IS nn::Conv2d's forward; cross-check through the public
  // module anyway so a future divergence in either wrapper is caught.
  util::Rng rng(9);
  nn::Conv2d conv(2, 5, 3, 2, 1, rng, /*with_bias=*/true);
  conv.bias().value[2] = 0.7f;
  const auto x = random_tensor(tensor::Shape({3, 2, 7, 7}), 10);
  const auto expected = conv.forward(x);

  const auto w2d =
      conv.weight().value.reshaped(tensor::Shape({5, 2 * 3 * 3}));
  const auto y =
      kernels::conv2d_forward(x, w2d, 3, 2, 1, conv.bias().value.raw());
  EXPECT_TRUE(y.allclose(expected, 1e-6f));
}

TEST(Kernels, AddChannelBiasBroadcastsPerPlane) {
  tensor::Tensor y(tensor::Shape({1, 2, 1, 2}), {1, 2, 3, 4});
  const float bias[2] = {10.0f, 20.0f};
  kernels::add_channel_bias(y, bias);
  EXPECT_TRUE(y.equals(
      tensor::Tensor(tensor::Shape({1, 2, 1, 2}), {11, 12, 23, 24})));
}

TEST(Kernels, PoolFanoutCoversRangeExactlyOnce) {
  // The kernels::parallel_chunks shim is retired — kernels take a
  // runtime::IntraOp and fan out on its pool (tools/dstee_lint's
  // kernel-intraop rule keeps it that way). The historical chunking
  // contract (coverage, clamping, empty-range call) lives on the pool and
  // must hold unchanged for every chunk count kernels pass through.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{16}, std::size_t{0}}) {
    std::vector<std::atomic<int>> hits(13);
    runtime::default_pool().run_chunks(
        13, threads, [&](std::size_t b0, std::size_t b1) {
          for (std::size_t i = b0; i < b1; ++i) hits[i].fetch_add(1);
        });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  // Empty range still invokes fn once with an empty chunk.
  bool called = false;
  runtime::default_pool().run_chunks(
      0, 4, [&](std::size_t b0, std::size_t b1) {
        called = true;
        EXPECT_EQ(b0, b1);
      });
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace dstee
