// Model tests: VGG / ResNet / MLP / GNN shape contracts and gradients.
#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "tensor/ops.hpp"
#include "models/gnn.hpp"
#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::random_tensor;

TEST(Vgg, PlanDepths) {
  const auto plan19 = models::vgg_plan(19);
  EXPECT_EQ(std::count(plan19.begin(), plan19.end(), 0u), 5);
  // VGG-19 has 16 conv entries.
  std::size_t convs = 0;
  for (const auto e : plan19) {
    if (e != 0) ++convs;
  }
  EXPECT_EQ(convs, 16u);
  std::size_t convs13 = 0;
  for (const auto e : models::vgg_plan(13)) {
    if (e != 0) ++convs13;
  }
  EXPECT_EQ(convs13, 10u);
  EXPECT_THROW(models::vgg_plan(7), util::CheckError);
}

TEST(Vgg, ForwardShapeAndConvCount) {
  util::Rng rng(1);
  models::VggConfig cfg;
  cfg.depth = 19;
  cfg.image_size = 16;
  cfg.num_classes = 10;
  cfg.width_multiplier = 0.125;
  models::Vgg vgg(cfg, rng);
  EXPECT_EQ(vgg.num_conv_layers(), 16u);
  const auto y = vgg.forward(random_tensor(tensor::Shape({2, 3, 16, 16}), 2));
  EXPECT_EQ(y.shape(), tensor::Shape({2, 10}));
}

TEST(Vgg, TinyImagesSkipLatePools) {
  util::Rng rng(3);
  models::VggConfig cfg;
  cfg.depth = 11;
  cfg.image_size = 8;  // only 3 pools fit
  cfg.num_classes = 5;
  cfg.width_multiplier = 0.25;
  models::Vgg vgg(cfg, rng);
  const auto y = vgg.forward(random_tensor(tensor::Shape({1, 3, 8, 8}), 4));
  EXPECT_EQ(y.shape(), tensor::Shape({1, 5}));
}

TEST(Vgg, WidthMultiplierScalesParameters) {
  util::Rng rng(5);
  models::VggConfig small_cfg, big_cfg;
  small_cfg.depth = big_cfg.depth = 11;
  small_cfg.image_size = big_cfg.image_size = 8;
  small_cfg.width_multiplier = 0.125;
  big_cfg.width_multiplier = 0.25;
  models::Vgg small(small_cfg, rng), big(big_cfg, rng);
  EXPECT_GT(big.num_parameters(), 2 * small.num_parameters());
}

TEST(Vgg, BackwardRuns) {
  util::Rng rng(6);
  models::VggConfig cfg;
  cfg.depth = 11;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.125;
  models::Vgg vgg(cfg, rng);
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 7);
  const auto y = vgg.forward(x);
  const auto gx = vgg.backward(random_tensor(y.shape(), 8));
  EXPECT_EQ(gx.shape(), x.shape());
  // All sparsifiable weights must have received gradients.
  for (const auto* p : vgg.parameters()) {
    if (!p->sparsifiable) continue;
    double norm = 0.0;
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      norm += std::abs(static_cast<double>(p->grad[i]));
    }
    EXPECT_GT(norm, 0.0) << p->name;
  }
}

TEST(Vgg, FlopsModelMatchesConvCount) {
  util::Rng rng(9);
  models::VggConfig cfg;
  cfg.depth = 19;
  cfg.image_size = 16;
  cfg.width_multiplier = 0.125;
  models::Vgg vgg(cfg, rng);
  const auto fm = vgg.flops_model();
  EXPECT_EQ(fm.num_sparsifiable(), 17u);  // 16 convs + classifier
  EXPECT_GT(fm.dense_forward_flops(), 0.0);
}

TEST(ResNet, Depth18ForwardShape) {
  util::Rng rng(10);
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 16;
  cfg.num_classes = 10;
  cfg.width_multiplier = 0.125;
  models::ResNet net(cfg, rng);
  const auto y = net.forward(random_tensor(tensor::Shape({2, 3, 16, 16}), 11));
  EXPECT_EQ(y.shape(), tensor::Shape({2, 10}));
}

TEST(ResNet, Depth50UsesBottlenecks) {
  util::Rng rng(12);
  models::ResNetConfig cfg;
  cfg.depth = 50;
  cfg.image_size = 8;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.0625;
  models::ResNet net(cfg, rng);
  const auto y = net.forward(random_tensor(tensor::Shape({1, 3, 8, 8}), 13));
  EXPECT_EQ(y.shape(), tensor::Shape({1, 4}));
  // Bottleneck ResNet-50 has 53 convs (1 stem + 3·16 blocks + 4 shortcuts).
  const auto fm = net.flops_model();
  EXPECT_EQ(fm.num_sparsifiable(), 54u);  // 53 convs + classifier
}

TEST(ResNet, UnsupportedDepthThrows) {
  util::Rng rng(14);
  models::ResNetConfig cfg;
  cfg.depth = 99;
  EXPECT_THROW(models::ResNet(cfg, rng), util::CheckError);
}

TEST(ResNet, BackwardProducesInputGradient) {
  util::Rng rng(15);
  models::ResNetConfig cfg;
  cfg.depth = 18;
  cfg.image_size = 8;
  cfg.num_classes = 3;
  cfg.width_multiplier = 0.125;
  models::ResNet net(cfg, rng);
  const auto x = random_tensor(tensor::Shape({2, 3, 8, 8}), 16);
  const auto y = net.forward(x);
  const auto gx = net.backward(random_tensor(y.shape(), 17));
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_FALSE(tensor::has_nonfinite(gx));
}

TEST(ResidualBlock, IdentityShortcutGradientsCheck) {
  util::Rng rng(18);
  std::vector<models::ConvGeomRecord> records;
  models::ResidualBlock block(4, 4, 4, 1, /*bottleneck=*/false, rng, 5,
                              records);
  block.set_training(true);
  // BN centers pre-activations at zero, so individual FD probes can land on
  // ReLU kinks; the tolerant checker requires MOST probes to agree, which
  // still catches routing errors (missing skip path, wrong mask) that
  // corrupt every entry. Standalone Conv2d/BatchNorm checks are tight.
  testing::check_module_gradients_tolerant(
      block, random_tensor(tensor::Shape({2, 4, 5, 5}), 19));
}

TEST(ResidualBlock, ProjectionShortcutGradientsCheck) {
  util::Rng rng(20);
  std::vector<models::ConvGeomRecord> records;
  models::ResidualBlock block(4, 4, 8, 2, /*bottleneck=*/true, rng, 6,
                              records);
  block.set_training(true);
  testing::check_module_gradients_tolerant(
      block, random_tensor(tensor::Shape({1, 4, 6, 6}), 21));
}

TEST(Mlp, ForwardShapeAndFlops) {
  util::Rng rng(22);
  models::MlpConfig cfg;
  cfg.in_features = 10;
  cfg.hidden = {20, 30};
  cfg.out_features = 5;
  models::Mlp mlp(cfg, rng);
  const auto y = mlp.forward(random_tensor(tensor::Shape({4, 10}), 23));
  EXPECT_EQ(y.shape(), tensor::Shape({4, 5}));
  const auto fm = mlp.flops_model();
  EXPECT_EQ(fm.num_sparsifiable(), 3u);
  EXPECT_DOUBLE_EQ(fm.dense_forward_flops(),
                   2.0 * (10 * 20 + 20 * 30 + 30 * 5));
}

TEST(Mlp, OptionsBuildBatchNormAndDropout) {
  util::Rng rng(24);
  models::MlpConfig cfg;
  cfg.batch_norm = true;
  cfg.dropout = 0.2;
  models::Mlp mlp(cfg, rng);
  const auto y = mlp.forward(random_tensor(tensor::Shape({4, 32}), 25));
  EXPECT_EQ(y.dim(1), 10u);
}

TEST(Gnn, GcnLayerShapesAndGradients) {
  graph::PowerLawConfig gcfg;
  gcfg.num_nodes = 20;
  gcfg.edges_per_node = 2;
  const graph::Graph g = graph::generate_power_law(gcfg);
  util::Rng rng(26);
  models::GcnLayer layer(g, 6, 4, rng);
  testing::check_module_gradients(
      layer, random_tensor(tensor::Shape({20, 6}), 27), 6e-2, 10);
}

TEST(Gnn, LinkPredictorEncodesAndScores) {
  graph::PowerLawConfig gcfg;
  gcfg.num_nodes = 30;
  gcfg.edges_per_node = 3;
  const graph::Graph g = graph::generate_power_law(gcfg);
  util::Rng rng(28);
  models::GnnConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = 16;
  cfg.embedding = 8;
  models::GnnLinkPredictor model(g, cfg, rng);
  const auto z = model.forward(random_tensor(tensor::Shape({30, 8}), 29));
  EXPECT_EQ(z.shape(), tensor::Shape({30, 8}));
  std::vector<graph::LabeledPair> pairs{{0, 1, 1.0f}, {2, 3, 0.0f}};
  const auto logits = model.score_pairs(pairs);
  EXPECT_EQ(logits.numel(), 2u);
  // pair_grad → embedding grad → backward runs end to end.
  tensor::Tensor grad_logits(tensor::Shape({2}), {1.0f, -1.0f});
  const auto grad_z = model.pair_grad_to_embedding_grad(grad_logits, pairs);
  EXPECT_EQ(grad_z.shape(), z.shape());
  const auto gx = model.backward(grad_z);
  EXPECT_EQ(gx.shape(), tensor::Shape({30, 8}));
}

TEST(Gnn, HasExactlyTwoSparsifiableLayers) {
  // The paper sparsifies "the two fully connected layers".
  graph::PowerLawConfig gcfg;
  gcfg.num_nodes = 20;
  gcfg.edges_per_node = 2;
  const graph::Graph g = graph::generate_power_law(gcfg);
  util::Rng rng(30);
  models::GnnLinkPredictor model(g, models::GnnConfig{}, rng);
  std::size_t sparsifiable = 0;
  for (const auto* p : model.parameters()) {
    if (p->sparsifiable) ++sparsifiable;
  }
  EXPECT_EQ(sparsifiable, 2u);
}

TEST(Gnn, PairGradientMatchesFiniteDifference) {
  graph::PowerLawConfig gcfg;
  gcfg.num_nodes = 12;
  gcfg.edges_per_node = 2;
  const graph::Graph g = graph::generate_power_law(gcfg);
  util::Rng rng(31);
  models::GnnConfig cfg;
  cfg.in_features = 4;
  cfg.hidden = 6;
  cfg.embedding = 4;
  models::GnnLinkPredictor model(g, cfg, rng);
  const auto x = random_tensor(tensor::Shape({12, 4}), 32);
  std::vector<graph::LabeledPair> pairs{{0, 5, 1.0f}, {3, 7, 0.0f}};

  // analytic: d(sum of logits)/d(W1[0])
  model.zero_grad();
  model.forward(x);
  tensor::Tensor ones(tensor::Shape({2}));
  ones.fill(1.0f);
  model.backward(model.pair_grad_to_embedding_grad(ones, pairs));
  nn::Parameter* w1 = model.parameters()[0];
  const float analytic = w1->grad[0];

  auto loss_of = [&]() {
    model.forward(x);
    const auto logits = model.score_pairs(pairs);
    return static_cast<double>(logits[0]) + logits[1];
  };
  const float eps = 1e-2f;
  const float saved = w1->value[0];
  w1->value[0] = saved + eps;
  const double plus = loss_of();
  w1->value[0] = saved - eps;
  const double minus = loss_of();
  w1->value[0] = saved;
  EXPECT_NEAR(analytic, (plus - minus) / (2.0 * eps), 5e-2);
}

}  // namespace
}  // namespace dstee
