// Dataset and loader tests.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataloader.hpp"
#include "data/synthetic_images.hpp"
#include "data/synthetic_tabular.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

data::SyntheticImageConfig small_images() {
  data::SyntheticImageConfig cfg;
  cfg.num_classes = 4;
  cfg.image_size = 8;
  cfg.train_per_class = 10;
  cfg.test_per_class = 5;
  cfg.seed = 3;
  return cfg;
}

TEST(ImageDataset, SizesAndShapes) {
  const data::SyntheticImageDataset train(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset test(
      small_images(), data::SyntheticImageDataset::Split::kTest);
  EXPECT_EQ(train.size(), 40u);
  EXPECT_EQ(test.size(), 20u);
  EXPECT_EQ(train.example_shape(), tensor::Shape({3, 8, 8}));
  EXPECT_EQ(train.num_classes(), 4u);
}

TEST(ImageDataset, LabelsAreBalanced) {
  const data::SyntheticImageDataset train(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t i = 0; i < train.size(); ++i) ++counts[train.label(i)];
  for (const auto c : counts) EXPECT_EQ(c, 10u);
}

TEST(ImageDataset, DeterministicBySeed) {
  const data::SyntheticImageDataset a(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset b(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  EXPECT_TRUE(a.example(7).equals(b.example(7)));
}

TEST(ImageDataset, DifferentSeedsDiffer) {
  auto cfg_b = small_images();
  cfg_b.seed = 4;
  const data::SyntheticImageDataset a(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset b(
      cfg_b, data::SyntheticImageDataset::Split::kTrain);
  EXPECT_FALSE(a.example(0).equals(b.example(0)));
}

TEST(ImageDataset, TrainAndTestSplitsDiffer) {
  const data::SyntheticImageDataset train(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset test(
      small_images(), data::SyntheticImageDataset::Split::kTest);
  EXPECT_FALSE(train.example(0).equals(test.example(0)));
}

TEST(ImageDataset, SameClassSharesPrototypeStructure) {
  // Two samples of the same class must correlate more than samples of
  // different classes (on average) — this is what makes it learnable.
  auto cfg = small_images();
  cfg.signal = 2.0;
  cfg.pixel_noise = 0.3;
  cfg.spatial_noise = 0.3;
  const data::SyntheticImageDataset train(
      cfg, data::SyntheticImageDataset::Split::kTrain);
  auto corr = [&](std::size_t i, std::size_t j) {
    const auto a = train.example(i), b = train.example(j);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t k = 0; k < a.numel(); ++k) {
      dot += static_cast<double>(a[k]) * b[k];
      na += static_cast<double>(a[k]) * a[k];
      nb += static_cast<double>(b[k]) * b[k];
    }
    return dot / std::sqrt(na * nb);
  };
  // same class: indices 0..9 are class 0; different: 0 vs 10 (class 1)
  double same = 0.0, diff = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      same += corr(i, j);
      diff += corr(i, 10 + j);
      ++n;
    }
  }
  EXPECT_GT(same / n, diff / n);
}

TEST(ImageDataset, BatchAssembly) {
  const data::SyntheticImageDataset train(
      small_images(), data::SyntheticImageDataset::Split::kTrain);
  const auto batch = train.batch({0, 5, 11});
  EXPECT_EQ(batch.shape(), tensor::Shape({3, 3, 8, 8}));
  const auto labels = train.batch_labels({0, 5, 11});
  EXPECT_EQ(labels[0], train.label(0));
  EXPECT_EQ(labels[2], train.label(11));
  EXPECT_THROW(train.batch({1000}), util::CheckError);
}

TEST(TabularDataset, SizesAndSeparation) {
  data::SyntheticTabularConfig cfg;
  cfg.num_classes = 3;
  cfg.features = 8;
  cfg.train_per_class = 20;
  cfg.test_per_class = 5;
  cfg.class_separation = 5.0;
  cfg.noise = 0.5;
  const data::SyntheticTabularDataset train(
      cfg, data::SyntheticTabularDataset::Split::kTrain);
  EXPECT_EQ(train.size(), 60u);
  EXPECT_EQ(train.example_shape(), tensor::Shape({8}));
  // With large separation a nearest-class-mean classifier should be
  // near-perfect; verify per-class means are far apart.
  std::vector<std::vector<double>> means(3, std::vector<double>(8, 0.0));
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto x = train.example(i);
    for (std::size_t f = 0; f < 8; ++f) {
      means[train.label(i)][f] += x[f] / 20.0;
    }
  }
  double d01 = 0.0;
  for (std::size_t f = 0; f < 8; ++f) {
    const double d = means[0][f] - means[1][f];
    d01 += d * d;
  }
  EXPECT_GT(std::sqrt(d01), 2.0);
}

TEST(DataLoader, CoversEveryExampleOncePerEpoch) {
  const data::SyntheticTabularDataset train(
      data::SyntheticTabularConfig{},
      data::SyntheticTabularDataset::Split::kTrain);
  data::DataLoader loader(train, 32, util::Rng(5));
  std::multiset<std::size_t> seen;
  while (loader.has_next()) {
    for (const auto idx : loader.next_indices()) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(seen.count(i), 1u);
  }
}

TEST(DataLoader, BatchesPerEpochRoundsUp) {
  const data::SyntheticTabularDataset train(
      data::SyntheticTabularConfig{},
      data::SyntheticTabularDataset::Split::kTrain);
  data::DataLoader loader(train, 100, util::Rng(6));
  EXPECT_EQ(loader.batches_per_epoch(),
            (train.size() + 99) / 100);
}

TEST(DataLoader, ShufflesBetweenEpochs) {
  const data::SyntheticTabularDataset train(
      data::SyntheticTabularConfig{},
      data::SyntheticTabularDataset::Split::kTrain);
  data::DataLoader loader(train, train.size(), util::Rng(7));
  const auto first = loader.next_indices();
  loader.start_epoch();
  const auto second = loader.next_indices();
  EXPECT_NE(first, second);
}

TEST(DataLoader, NextBatchMaterializesTensors) {
  const data::SyntheticTabularDataset train(
      data::SyntheticTabularConfig{},
      data::SyntheticTabularDataset::Split::kTrain);
  data::DataLoader loader(train, 16, util::Rng(8));
  const auto batch = loader.next_batch();
  EXPECT_EQ(batch.examples.dim(0), 16u);
  EXPECT_EQ(batch.labels.size(), 16u);
}

TEST(DataLoader, ExhaustedEpochThrows) {
  data::SyntheticTabularConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 4;
  const data::SyntheticTabularDataset train(
      cfg, data::SyntheticTabularDataset::Split::kTrain);
  data::DataLoader loader(train, 8, util::Rng(9));
  loader.next_indices();
  EXPECT_FALSE(loader.has_next());
  EXPECT_THROW(loader.next_indices(), util::CheckError);
}

}  // namespace
}  // namespace dstee
