// Unit tests for elementwise tensor ops and reductions.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

tensor::Tensor t2(std::initializer_list<float> v) {
  return tensor::Tensor(tensor::Shape({v.size()}), std::vector<float>(v));
}

TEST(Ops, AddSubMulDiv) {
  const auto a = t2({1, 2, 3});
  const auto b = t2({4, 5, 6});
  EXPECT_TRUE(tensor::add(a, b).equals(t2({5, 7, 9})));
  EXPECT_TRUE(tensor::sub(b, a).equals(t2({3, 3, 3})));
  EXPECT_TRUE(tensor::mul(a, b).equals(t2({4, 10, 18})));
  EXPECT_TRUE(tensor::div(b, a).allclose(t2({4, 2.5, 2})));
}

TEST(Ops, ShapeMismatchThrows) {
  const auto a = t2({1, 2});
  tensor::Tensor b({3});
  EXPECT_THROW(tensor::add(a, b), util::CheckError);
  EXPECT_THROW(tensor::mul(a, b), util::CheckError);
}

TEST(Ops, InplaceVariants) {
  auto a = t2({1, 2, 3});
  tensor::add_inplace(a, t2({1, 1, 1}));
  EXPECT_TRUE(a.equals(t2({2, 3, 4})));
  tensor::sub_inplace(a, t2({1, 1, 1}));
  EXPECT_TRUE(a.equals(t2({1, 2, 3})));
  tensor::mul_inplace(a, t2({2, 2, 2}));
  EXPECT_TRUE(a.equals(t2({2, 4, 6})));
}

TEST(Ops, Axpy) {
  auto a = t2({1, 1, 1});
  tensor::axpy_inplace(a, 2.0f, t2({1, 2, 3}));
  EXPECT_TRUE(a.equals(t2({3, 5, 7})));
}

TEST(Ops, ScalarOps) {
  const auto a = t2({1, 2});
  EXPECT_TRUE(tensor::add_scalar(a, 1.0f).equals(t2({2, 3})));
  EXPECT_TRUE(tensor::mul_scalar(a, 3.0f).equals(t2({3, 6})));
  auto b = t2({2, 4});
  tensor::mul_scalar_inplace(b, 0.5f);
  EXPECT_TRUE(b.equals(t2({1, 2})));
}

TEST(Ops, AbsSignMap) {
  const auto a = t2({-2, 0, 3});
  EXPECT_TRUE(tensor::abs(a).equals(t2({2, 0, 3})));
  EXPECT_TRUE(tensor::sign(a).equals(t2({-1, 0, 1})));
  const auto sq = tensor::map(a, [](float x) { return x * x; });
  EXPECT_TRUE(sq.equals(t2({4, 0, 9})));
  auto b = t2({1, 2, 3});
  tensor::map_inplace(b, [](float x) { return x + 1; });
  EXPECT_TRUE(b.equals(t2({2, 3, 4})));
}

TEST(Ops, Reductions) {
  const auto a = t2({1, -2, 3, 4});
  EXPECT_DOUBLE_EQ(tensor::sum(a), 6.0);
  EXPECT_DOUBLE_EQ(tensor::mean(a), 1.5);
  EXPECT_EQ(tensor::max_value(a), 4.0f);
  EXPECT_EQ(tensor::min_value(a), -2.0f);
  EXPECT_EQ(tensor::argmax(a), 3u);
  EXPECT_DOUBLE_EQ(tensor::squared_norm(a), 1 + 4 + 9 + 16);
  EXPECT_NEAR(tensor::norm(a), std::sqrt(30.0), 1e-9);
}

TEST(Ops, ArgmaxFirstOnTies) {
  EXPECT_EQ(tensor::argmax(t2({1, 3, 3, 2})), 1u);
}

TEST(Ops, CountNonzero) {
  const auto a = t2({0, 1e-6f, -1, 0});
  EXPECT_EQ(tensor::count_nonzero(a), 2u);
  EXPECT_EQ(tensor::count_nonzero(a, 1e-5f), 1u);
}

TEST(Ops, ArgmaxRows) {
  tensor::Tensor m(tensor::Shape({2, 3}), {1, 5, 2, 9, 0, 3});
  const auto idx = tensor::argmax_rows(m);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
  EXPECT_THROW(tensor::argmax_rows(t2({1, 2})), util::CheckError);
}

TEST(Ops, HasNonfinite) {
  auto a = t2({1, 2, 3});
  EXPECT_FALSE(tensor::has_nonfinite(a));
  a[1] = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(tensor::has_nonfinite(a));
  a[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(tensor::has_nonfinite(a));
}

TEST(Ops, EmptyReductionsThrow) {
  tensor::Tensor empty(tensor::Shape({0}));
  EXPECT_THROW(tensor::mean(empty), util::CheckError);
  EXPECT_THROW(tensor::max_value(empty), util::CheckError);
  EXPECT_THROW(tensor::argmax(empty), util::CheckError);
}

}  // namespace
}  // namespace dstee
