// Layer tests: shape contracts + finite-difference gradient checks for
// every layer (the DST methods trust these gradients for growth scoring).
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace dstee {
namespace {

using testing::check_module_gradients;
using testing::random_tensor;

TEST(Linear, ForwardShapeAndBias) {
  util::Rng rng(1);
  nn::Linear layer(4, 3, rng);
  layer.bias().value[1] = 2.0f;
  const auto y = layer.forward(random_tensor(tensor::Shape({5, 4}), 2));
  EXPECT_EQ(y.shape(), tensor::Shape({5, 3}));
}

TEST(Linear, ZeroWeightsBiasOnlyOutput) {
  util::Rng rng(1);
  nn::Linear layer(2, 2, rng);
  layer.weight().value.fill(0.0f);
  layer.bias().value[0] = 1.5f;
  layer.bias().value[1] = -0.5f;
  const auto y = layer.forward(random_tensor(tensor::Shape({3, 2}), 3));
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(y.at2(n, 0), 1.5f);
    EXPECT_EQ(y.at2(n, 1), -0.5f);
  }
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  util::Rng rng(2);
  nn::Linear layer(6, 4, rng);
  check_module_gradients(layer, random_tensor(tensor::Shape({3, 6}), 4));
}

TEST(Linear, NoBiasVariantHasOneParameter) {
  util::Rng rng(3);
  nn::Linear layer(4, 4, rng, /*with_bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  EXPECT_THROW(layer.bias(), util::CheckError);
}

TEST(Linear, WrongInputShapeThrows) {
  util::Rng rng(4);
  nn::Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(random_tensor(tensor::Shape({3, 5}), 5)),
               util::CheckError);
}

TEST(Linear, WeightIsSparsifiableBiasIsNot) {
  util::Rng rng(5);
  nn::Linear layer(4, 2, rng);
  EXPECT_TRUE(layer.weight().sparsifiable);
  EXPECT_FALSE(layer.bias().sparsifiable);
}

TEST(Conv2d, ForwardShape) {
  util::Rng rng(6);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const auto y = conv.forward(random_tensor(tensor::Shape({2, 3, 8, 8}), 7));
  EXPECT_EQ(y.shape(), tensor::Shape({2, 8, 8, 8}));
}

TEST(Conv2d, StrideShrinksOutput) {
  util::Rng rng(8);
  nn::Conv2d conv(1, 4, 3, 2, 1, rng);
  const auto y = conv.forward(random_tensor(tensor::Shape({1, 1, 8, 8}), 9));
  EXPECT_EQ(y.shape(), tensor::Shape({1, 4, 4, 4}));
}

TEST(Conv2d, GradientsMatchFiniteDifferences) {
  util::Rng rng(10);
  nn::Conv2d conv(2, 3, 3, 1, 1, rng);
  check_module_gradients(conv, random_tensor(tensor::Shape({2, 2, 5, 5}), 11));
}

TEST(Conv2d, StridedGradientsMatchFiniteDifferences) {
  util::Rng rng(12);
  nn::Conv2d conv(2, 2, 3, 2, 1, rng);
  check_module_gradients(conv, random_tensor(tensor::Shape({1, 2, 6, 6}), 13));
}

TEST(Conv2d, BiasGradients) {
  util::Rng rng(14);
  nn::Conv2d conv(1, 2, 3, 1, 1, rng, /*with_bias=*/true);
  EXPECT_EQ(conv.parameters().size(), 2u);
  check_module_gradients(conv, random_tensor(tensor::Shape({2, 1, 4, 4}), 15));
}

TEST(Conv2d, KnownConvolutionValue) {
  util::Rng rng(16);
  nn::Conv2d conv(1, 1, 2, 1, 0, rng);
  conv.weight().value = tensor::Tensor(tensor::Shape({1, 1, 2, 2}),
                                       {1, 0, 0, 1});  // trace kernel
  tensor::Tensor x(tensor::Shape({1, 1, 3, 3}),
                   {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const auto y = conv.forward(x);
  EXPECT_EQ(y.shape(), tensor::Shape({1, 1, 2, 2}));
  EXPECT_EQ(y[0], 1.0f + 5.0f);
  EXPECT_EQ(y[3], 5.0f + 9.0f);
}

TEST(Conv2d, WrongChannelCountThrows) {
  util::Rng rng(17);
  nn::Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(random_tensor(tensor::Shape({1, 2, 8, 8}), 18)),
               util::CheckError);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  nn::BatchNorm2d bn(3);
  bn.set_training(true);
  const auto x = random_tensor(tensor::Shape({4, 3, 5, 5}), 19, 3.0f);
  const auto y = bn.forward(x);
  // Each channel of the output should have ≈0 mean and ≈1 variance.
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    const std::size_t count = 4 * 25;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t i = 0; i < 25; ++i) {
        mean += y[(n * 3 + c) * 25 + i];
      }
    }
    mean /= count;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t i = 0; i < 25; ++i) {
        const double d = y[(n * 3 + c) * 25 + i] - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  nn::BatchNorm2d bn(2);
  bn.set_training(true);
  for (int i = 0; i < 20; ++i) {
    bn.forward(random_tensor(tensor::Shape({8, 2, 3, 3}),
                             static_cast<std::uint64_t>(100 + i), 2.0f));
  }
  bn.set_training(false);
  const auto x = random_tensor(tensor::Shape({4, 2, 3, 3}), 21, 2.0f);
  const auto y = bn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // Running stats should be near the true distribution (mean 0, var 4).
  EXPECT_NEAR(bn.running_mean()[0], 0.0f, 0.5f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 1.5f);
}

TEST(BatchNorm2d, GradientsMatchFiniteDifferences) {
  nn::BatchNorm2d bn(2);
  bn.set_training(true);
  check_module_gradients(bn, random_tensor(tensor::Shape({3, 2, 4, 4}), 22),
                         8e-2, 10, 1e-2f);
}

TEST(BatchNorm1d, GradientsMatchFiniteDifferences) {
  nn::BatchNorm1d bn(5);
  bn.set_training(true);
  check_module_gradients(bn, random_tensor(tensor::Shape({6, 5}), 23), 8e-2,
                         10, 1e-2f);
}

TEST(BatchNorm, RejectsWrongRank) {
  nn::BatchNorm2d bn2(3);
  EXPECT_THROW(bn2.forward(random_tensor(tensor::Shape({3, 3}), 24)),
               util::CheckError);
  nn::BatchNorm1d bn1(3);
  EXPECT_THROW(bn1.forward(random_tensor(tensor::Shape({2, 3, 4, 4}), 25)),
               util::CheckError);
}

TEST(ReLU, ZeroesNegatives) {
  nn::ReLU relu;
  tensor::Tensor x(tensor::Shape({4}), {-1, 0, 2, -3});
  const auto y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(ReLU, GradientMasksNegatives) {
  nn::ReLU relu;
  tensor::Tensor x(tensor::Shape({3}), {-1, 1, 2});
  relu.forward(x);
  tensor::Tensor g(tensor::Shape({3}), {5, 5, 5});
  const auto gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 5.0f);
  EXPECT_EQ(gx[2], 5.0f);
}

TEST(Activations, SigmoidTanhLeakyGradients) {
  nn::Sigmoid sigmoid;
  check_module_gradients(sigmoid, random_tensor(tensor::Shape({3, 4}), 26));
  nn::Tanh tanh_layer;
  check_module_gradients(tanh_layer, random_tensor(tensor::Shape({3, 4}), 27));
  nn::LeakyReLU leaky(0.1f);
  check_module_gradients(leaky, random_tensor(tensor::Shape({3, 4}), 28));
}

TEST(MaxPool, SelectsWindowMaximum) {
  nn::MaxPool2d pool(2);
  tensor::Tensor x(tensor::Shape({1, 1, 2, 2}), {1, 5, 3, 2});
  const auto y = pool.forward(x);
  EXPECT_EQ(y.shape(), tensor::Shape({1, 1, 1, 1}));
  EXPECT_EQ(y[0], 5.0f);
  tensor::Tensor g(tensor::Shape({1, 1, 1, 1}), {7.0f});
  const auto gx = pool.backward(g);
  EXPECT_EQ(gx[1], 7.0f);  // gradient routed to the argmax
  EXPECT_EQ(gx[0], 0.0f);
}

TEST(MaxPool, GradientsMatchFiniteDifferences) {
  nn::MaxPool2d pool(2);
  // distinct values so the argmax is stable under perturbation
  check_module_gradients(pool, random_tensor(tensor::Shape({2, 2, 4, 4}), 29),
                         5e-2, 12, 1e-3f);
}

TEST(AvgPool, AveragesWindow) {
  nn::AvgPool2d pool(2);
  tensor::Tensor x(tensor::Shape({1, 1, 2, 2}), {1, 2, 3, 6});
  const auto y = pool.forward(x);
  EXPECT_EQ(y[0], 3.0f);
}

TEST(AvgPool, GradientsMatchFiniteDifferences) {
  nn::AvgPool2d pool(2);
  check_module_gradients(pool, random_tensor(tensor::Shape({1, 2, 4, 4}), 30));
}

TEST(GlobalAvgPool, ReducesToChannels) {
  nn::GlobalAvgPool pool;
  const auto y =
      pool.forward(random_tensor(tensor::Shape({3, 5, 4, 4}), 31));
  EXPECT_EQ(y.shape(), tensor::Shape({3, 5}));
}

TEST(GlobalAvgPool, GradientsMatchFiniteDifferences) {
  nn::GlobalAvgPool pool;
  check_module_gradients(pool, random_tensor(tensor::Shape({2, 3, 3, 3}), 32));
}

TEST(Flatten, ShapeRoundTrip) {
  nn::Flatten flatten;
  const auto x = random_tensor(tensor::Shape({2, 3, 4, 5}), 33);
  const auto y = flatten.forward(x);
  EXPECT_EQ(y.shape(), tensor::Shape({2, 60}));
  const auto gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Dropout, EvalModePassesThrough) {
  nn::Dropout dropout(0.5, util::Rng(1));
  dropout.set_training(false);
  const auto x = random_tensor(tensor::Shape({4, 4}), 34);
  EXPECT_TRUE(dropout.forward(x).equals(x));
}

TEST(Dropout, TrainModeDropsAndRescales) {
  nn::Dropout dropout(0.5, util::Rng(2));
  dropout.set_training(true);
  tensor::Tensor x({10000});
  x.fill(1.0f);
  const auto y = dropout.forward(x);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) ++zeros;
    else EXPECT_NEAR(y[i], 2.0f, 1e-5f);  // 1/(1-0.5)
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.03);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.05);  // expectation preserved
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout dropout(0.3, util::Rng(3));
  dropout.set_training(true);
  tensor::Tensor x({100});
  x.fill(1.0f);
  const auto y = dropout.forward(x);
  tensor::Tensor g({100});
  g.fill(1.0f);
  const auto gx = dropout.backward(g);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(gx[i], y[i]);  // same 0-or-scale pattern
  }
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(nn::Dropout(1.0, util::Rng(4)), util::CheckError);
  EXPECT_THROW(nn::Dropout(-0.1, util::Rng(5)), util::CheckError);
}

TEST(Sequential, ComposesAndPropagatesTraining) {
  util::Rng rng(35);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(6, 8, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(8, 3, rng);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2 weights + 2 biases
  const auto y = seq.forward(random_tensor(tensor::Shape({2, 6}), 36));
  EXPECT_EQ(y.shape(), tensor::Shape({2, 3}));
  seq.set_training(false);
  EXPECT_FALSE(seq.child(1).is_training());
}

TEST(Sequential, GradientsMatchFiniteDifferences) {
  util::Rng rng(37);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(5, 7, rng);
  seq.emplace<nn::Tanh>();
  seq.emplace<nn::Linear>(7, 2, rng);
  check_module_gradients(seq, random_tensor(tensor::Shape({3, 5}), 38));
}

TEST(Sequential, ZeroGradClearsAll) {
  util::Rng rng(39);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(3, 3, rng);
  const auto x = random_tensor(tensor::Shape({2, 3}), 40);
  seq.forward(x);
  seq.backward(random_tensor(tensor::Shape({2, 3}), 41));
  seq.zero_grad();
  for (const auto* p : seq.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      EXPECT_EQ(p->grad[i], 0.0f);
    }
  }
}

TEST(Sequential, NumParametersCountsElements) {
  util::Rng rng(42);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(3, 4, rng);  // 12 + 4
  EXPECT_EQ(seq.num_parameters(), 16u);
}

TEST(Sequential, ConvPoolStackGradients) {
  util::Rng rng(43);
  nn::Sequential seq;
  seq.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::MaxPool2d>(2);
  seq.emplace<nn::Flatten>();
  seq.emplace<nn::Linear>(2 * 2 * 2, 3, rng);
  check_module_gradients(seq, random_tensor(tensor::Shape({2, 1, 4, 4}), 44),
                         6e-2);
}

}  // namespace
}  // namespace dstee
