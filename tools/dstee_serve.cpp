// dstee_serve — sparse inference server + load generator.
//
// Compiles an MLP, VGG or ResNet through the staged serve compiler
// (lower → pass pipeline → bind; Linear → CSR SpMM, Conv2d → im2col +
// SpMM over patches, residual adds as graph joins), starts an
// InferenceServer (sharded replica worker groups + per-group
// micro-batching queues; intra-op work runs on the persistent runtime
// pool), drives it with either closed-loop client threads or an
// open-loop Poisson arrival process (--arrival-rate), and reports
// latency percentiles (p50/p99/p99.9 in open-loop mode), queue peaks,
// backpressure-blocked time, and throughput.
//
// --partition-rows K appends the PartitionRows pass: the heaviest CSR
// nodes split into K cost-balanced row-range slices executed in parallel
// on the runtime pool (batch-1 latency lever). --passes SPEC rebuilds the
// whole pipeline from the named pass registry (e.g.
// "elide-dropout,fold-bn,fuse-epilogue,partition-rows:4"). --dump-plan
// prints the active pipeline and the post-pass plan (op, shape, nnz,
// FLOPs share, partition/fusion annotations) and exits without serving.
//
// --registry N serves a fleet of N independently-seeded sparse MLPs from
// one ModelRegistry under mixed open-loop traffic with admission control
// (try_submit sheds beyond --queue-quota) and optional autoscaling;
// --swap-mid-run hot-swaps model m0 with a sparse checkpoint delta
// halfway through the arrival schedule and asserts nothing was dropped.
//
//   # serve a checkpoint trained by dstee_run (same architecture flags):
//   ./build/tools/dstee_run --model mlp --sparsity 0.95 --checkpoint m.bin
//   ./build/tools/dstee_serve --checkpoint m.bin --in 32 --hidden 128,128
//       --out 8 --clients 8 --requests 4000
//   # serve a VGG-19 checkpoint (conv layers deploy as CSR over im2col):
//   ./build/tools/dstee_run --model vgg19 --sparsity 0.9 --checkpoint v.bin
//   ./build/tools/dstee_serve --model vgg19 --checkpoint v.bin
//       --image-size 12 --classes 8 --width 0.1
//   # or serve a randomly-initialized sparse topology (no checkpoint):
//   ./build/tools/dstee_serve --model resnet18 --sparsity 0.9
// (join wrapped lines when copying; see --help for the full flag set)
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "kernels/simd/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "serve/compiled_net.hpp"
#include "serve/delta.hpp"
#include "serve/passes.hpp"
#include "serve/plan.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"
#include "train/checkpoint.hpp"
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace dstee {
namespace {

std::vector<std::size_t> parse_hidden(const std::string& text) {
  std::vector<std::size_t> sizes;
  for (const std::string& part : util::split(text, ',')) {
    const std::string t = util::trim(part);
    if (t.empty()) continue;
    const long v = std::stol(t);
    util::check(v > 0, "hidden sizes must be positive: " + text);
    sizes.push_back(static_cast<std::size_t>(v));
  }
  return sizes;
}

/// A servable model: the module tree plus the shapes the load generator
/// needs (per-sample input shape, output feature count).
struct ServeModel {
  std::unique_ptr<nn::Sequential> module;
  tensor::Shape sample_shape;
  std::size_t out_features = 0;
};

ServeModel build_model(const util::ArgParser& args, bool smoke,
                       util::Rng& rng) {
  const std::string kind = args.get_string("model");
  ServeModel m;
  if (kind == "mlp") {
    models::MlpConfig mcfg;
    mcfg.in_features = static_cast<std::size_t>(args.get_int("in"));
    mcfg.hidden = parse_hidden(args.get_string("hidden"));
    mcfg.out_features = static_cast<std::size_t>(args.get_int("out"));
    mcfg.batch_norm = args.get_bool("batch-norm");
    if (smoke) mcfg.hidden = {32, 32};
    m.module = std::make_unique<models::Mlp>(mcfg, rng);
    m.sample_shape = tensor::Shape({mcfg.in_features});
    m.out_features = mcfg.out_features;
    return m;
  }
  const std::size_t image_size =
      smoke ? 8 : static_cast<std::size_t>(args.get_int("image-size"));
  const std::size_t classes =
      static_cast<std::size_t>(args.get_int("classes"));
  const double width = args.get_double("width");
  if (kind == "vgg19") {
    models::VggConfig vcfg;
    vcfg.depth = 19;
    vcfg.image_size = image_size;
    vcfg.num_classes = classes;
    vcfg.width_multiplier = width;
    m.module = std::make_unique<models::Vgg>(vcfg, rng);
  } else if (kind == "resnet18" || kind == "resnet50") {
    models::ResNetConfig rcfg;
    rcfg.depth = kind == "resnet18" ? 18 : 50;
    rcfg.image_size = image_size;
    rcfg.num_classes = classes;
    rcfg.width_multiplier = width;
    m.module = std::make_unique<models::ResNet>(rcfg, rng);
  } else {
    util::fail("unknown model: " + kind +
               " (expected mlp | vgg19 | resnet18 | resnet50)");
  }
  m.sample_shape = tensor::Shape({3, image_size, image_size});
  m.out_features = classes;
  return m;
}

tensor::Tensor batched(const tensor::Shape& sample, std::size_t batch) {
  return tensor::Tensor{sample.prepended(batch)};
}

/// --trace FILE: arm the process-wide recorder before serving starts.
void arm_trace_if_requested(const util::ArgParser& args) {
  if (args.get_string("trace").empty()) return;
  const long every = args.get_int("trace-sample");
  util::check(every >= 1, "--trace-sample must be >= 1");
  obs::trace().enable(static_cast<std::uint32_t>(every));
}

/// --trace FILE: drain every ring to Chrome trace-event JSON after the
/// run. Load the file in Perfetto / chrome://tracing.
void write_trace_if_requested(const util::ArgParser& args) {
  const std::string path = args.get_string("trace");
  if (path.empty()) return;
  obs::trace().disable();
  std::ofstream out(path);
  util::check(out.good(), "cannot open --trace output file " + path);
  obs::trace().write_chrome_trace(out);
  util::check(out.good(), "failed writing trace JSON to " + path);
  std::cout << "trace: " << obs::trace().drain().size()
            << " spans -> " << path << " (Chrome trace JSON)\n";
}

/// --metrics-out FILE: Prometheus text exposition of everything in the
/// process-wide registry (live serve metrics + bridged StatsSnapshots).
void write_metrics_if_requested(const util::ArgParser& args) {
  const std::string path = args.get_string("metrics-out");
  if (path.empty()) return;
  std::ofstream out(path);
  util::check(out.good(), "cannot open --metrics-out file " + path);
  out << obs::metrics().prometheus_text();
  util::check(out.good(), "failed writing metrics to " + path);
  std::cout << "metrics: " << obs::metrics().num_metrics()
            << " metrics -> " << path << " (Prometheus text)\n";
}

/// --profile-ops: the measured per-op breakdown after the run.
void print_op_profile(const serve::CompiledNet& net) {
  const obs::OpProfile* prof = net.op_profile();
  if (prof == nullptr) return;
  const double total = static_cast<double>(prof->total_ns());
  std::cout << "\nper-op profile (wall time over all forwards, all shards):\n";
  for (std::size_t i = 0; i < net.num_ops(); ++i) {
    const std::int64_t ns = prof->node_ns(i);
    const double share = total > 0.0
                             ? 100.0 * static_cast<double>(ns) / total
                             : 0.0;
    std::cout << "  [" << i << "] " << net.executor().op_name(i) << ": "
              << util::format_fixed(static_cast<double>(ns) / 1e6, 3)
              << " ms / " << prof->node_calls(i) << " calls ("
              << util::format_fixed(share, 1) << "%)\n";
  }
}

/// One DST grow/prune step, faked: per layer, flip a couple of mask
/// positions and jitter a few surviving values. Deterministic, so the
/// perturbed model — and the delta diffed from it — reproduce from the
/// seed alone.
void perturb_dst_step(sparse::SparseModel& state) {
  for (std::size_t l = 0; l < state.num_layers(); ++l) {
    sparse::MaskedParameter& layer = state.layer(l);
    const std::vector<std::size_t> active = layer.mask().active_indices();
    const std::vector<std::size_t> inactive = layer.mask().inactive_indices();
    const std::size_t flips = std::min<std::size_t>(
        2, std::min(active.size() > 1 ? active.size() - 1 : 0,
                    inactive.size()));
    for (std::size_t k = 0; k < flips; ++k) {
      layer.mask().deactivate(active[k]);
      layer.mask().activate(inactive[k]);
      layer.param().value[inactive[k]] =
          0.05f * static_cast<float>(k + 1);
    }
    const std::size_t jitters = std::min<std::size_t>(8, active.size());
    for (std::size_t k = flips; k < jitters; ++k) {
      layer.param().value[active[k]] *=
          1.0f + 0.01f * static_cast<float>(k + 1);
    }
    layer.apply_mask_to_value();
  }
}

// GCC 12 emits -Wrestrict false positives on std::string operator+ chains
// (GCC bug 105651); the "m" + std::to_string(i) model names trip it, so
// silence exactly this diagnostic for this function.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

/// --registry N: a fleet of independently-seeded sparse MLPs served from
/// one ModelRegistry under mixed open-loop Poisson traffic, with
/// admission control (try_submit) and an optional mid-run delta hot swap
/// of m0. Every arrival must either complete or be shed — a swap drops
/// nothing.
int run_registry(const util::ArgParser& args) {
  const bool smoke = args.get_bool("smoke");
  util::check(args.get_string("model") == "mlp",
              "--registry mode serves MLP fleets (use --model mlp)");
  const std::size_t n_models =
      static_cast<std::size_t>(args.get_int("registry"));

  models::MlpConfig mcfg;
  mcfg.in_features = static_cast<std::size_t>(args.get_int("in"));
  mcfg.hidden = parse_hidden(args.get_string("hidden"));
  mcfg.out_features = static_cast<std::size_t>(args.get_int("out"));
  mcfg.batch_norm = args.get_bool("batch-norm");
  if (smoke) mcfg.hidden = {32, 32};

  serve::ModelOptions mopts;
  mopts.server.num_threads =
      static_cast<std::size_t>(args.get_int("threads"));
  mopts.server.num_shards =
      static_cast<std::size_t>(args.get_int("shards"));
  mopts.server.max_batch =
      static_cast<std::size_t>(args.get_int("max-batch"));
  mopts.server.max_delay_ms = args.get_double("max-delay-ms");
  mopts.server.max_shards =
      static_cast<std::size_t>(args.get_int("max-shards"));
  mopts.server.queue_quota =
      static_cast<std::size_t>(args.get_int("queue-quota"));
  mopts.compile.intra_op_threads =
      static_cast<std::size_t>(args.get_int("intra-op"));
  mopts.autoscaler.enabled = args.get_bool("autoscale");
  if (smoke) {
    mopts.server.num_threads = 2;
    mopts.server.max_batch = 8;
    mopts.server.max_delay_ms = 1.0;
    mopts.autoscaler.interval_ms = 10.0;
  }

  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed"));
  const double sparsity = args.get_double("sparsity");

  serve::ModelRegistry registry;
  for (std::size_t i = 0; i < n_models; ++i) {
    // Each model's weights AND topology are a pure function of its seed,
    // which is what lets the swap path rebuild m0's base out-of-band.
    util::Rng mrng(seed + 7919 * i);
    auto module = std::make_unique<models::Mlp>(mcfg, mrng);
    auto state = std::make_unique<sparse::SparseModel>(
        *module, sparsity, sparse::DistributionKind::kErk, mrng);
    module->set_training(false);
    registry.add_model("m" + std::to_string(i), std::move(module),
                       std::move(state), mopts);
  }
  std::cout << "registry: " << n_models << " models x "
            << mopts.server.num_shards << " shards ("
            << mopts.server.num_threads << " threads each)"
            << (mopts.autoscaler.enabled ? ", autoscaler on" : "") << "\n";
  arm_trace_if_requested(args);

  // Pre-build the hot-swap delta: reconstruct m0's exact state from its
  // seed, advance a copy one DST step, diff the two. The delta's base
  // hash must match what the registry is serving right now.
  std::optional<serve::CheckpointDelta> delta;
  if (args.get_bool("swap-mid-run")) {
    util::Rng arng(seed);
    models::Mlp base(mcfg, arng);
    sparse::SparseModel base_state(base, sparsity,
                                   sparse::DistributionKind::kErk, arng);
    util::Rng brng(seed);
    models::Mlp next(mcfg, brng);
    sparse::SparseModel next_state(next, sparsity,
                                   sparse::DistributionKind::kErk, brng);
    perturb_dst_step(next_state);
    delta = serve::make_delta(base, &base_state, next, &next_state);
    util::check(delta->base_hash == registry.state_hash("m0"),
                "prepared delta is out of sync with the registry's m0");
  }

  std::size_t total_requests =
      static_cast<std::size_t>(args.get_int("requests"));
  double arrival_rate = args.get_double("arrival-rate");
  if (smoke) total_requests = 120;
  if (arrival_rate <= 0.0) arrival_rate = smoke ? 1500.0 : 2000.0;

  std::atomic<std::size_t> failures{0};
  // Guards the function-local inflight queue of this load generator.
  // dstee-lint: allow(unguarded-mutex) -- local lock, not a member
  util::Mutex fmu;
  util::CondVar fcv;
  std::deque<std::future<tensor::Tensor>> inflight;
  bool dispatch_done = false;
  const std::size_t out_features = mcfg.out_features;
  // dstee-lint: allow(raw-thread) -- load-gen client, not library code
  std::thread reaper([&] {
    for (;;) {
      std::future<tensor::Tensor> f;
      {
        util::UniqueLock lock(fmu);
        while (!dispatch_done && inflight.empty()) fcv.wait(lock);
        if (inflight.empty()) return;
        f = std::move(inflight.front());
        inflight.pop_front();
      }
      try {
        if (f.get().numel() != out_features) failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    }
  });

  util::Rng root(seed);
  util::Rng gap_rng = root.fork("poisson-arrivals");
  util::Rng pick_rng = root.fork("model-pick");
  util::Rng payload_rng = root.fork("openloop-payload");
  util::Timer wall;
  std::size_t shed_client = 0;
  const std::size_t swap_at = total_requests / 2;
  std::optional<serve::SwapReport> swap_report;

  using Clock = std::chrono::steady_clock;
  Clock::time_point next_arrival = Clock::now();
  for (std::size_t i = 0; i < total_requests; ++i) {
    if (delta && i == swap_at) {
      // Hot swap m0 mid-run: arrivals before this line may still be
      // queued or in flight — none of them may be dropped.
      swap_report = registry.apply_delta("m0", *delta);
      delta.reset();
    }
    const double gap_s = -std::log(1.0 - gap_rng.uniform()) / arrival_rate;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_arrival);
    const std::size_t pick = std::min<std::size_t>(
        n_models - 1,
        static_cast<std::size_t>(pick_rng.uniform() *
                                 static_cast<double>(n_models)));
    tensor::Tensor sample({mcfg.in_features});
    tensor::fill_normal(sample, payload_rng, 0.0f, 1.0f);
    std::optional<std::future<tensor::Tensor>> f =
        registry.try_submit("m" + std::to_string(pick), std::move(sample));
    if (!f) {
      ++shed_client;
      continue;
    }
    {
      util::MutexLock lock(fmu);
      inflight.push_back(std::move(*f));
    }
    fcv.notify_one();
  }
  const double offered_rps =
      static_cast<double>(total_requests) / wall.seconds();
  {
    util::MutexLock lock(fmu);
    dispatch_done = true;
  }
  fcv.notify_all();
  reaper.join();
  // Drain + join workers BEFORE reading stats: a worker fulfills the
  // promises of its last batch before recording them, so counters can
  // lag the reaper by one batch until shutdown joins everything.
  registry.shutdown();

  std::cout << "\n--- mixed open-loop traffic ("
            << util::format_fixed(arrival_rate, 1) << " req/s offered, "
            << util::format_fixed(offered_rps, 1) << " achieved) ---\n";
  std::size_t completed = 0, shed_server = 0, swaps = 0;
  for (const std::string& name : registry.model_names()) {
    const serve::StatsSnapshot s = registry.stats(name);
    completed += s.requests;
    shed_server += s.shed_total;
    swaps += s.swap_count;
    std::cout << "  " << name << ": " << s.requests << " reqs, "
              << s.shed_total << " shed, p50 "
              << util::format_fixed(s.latency_p50_ms, 3) << " ms, p99 "
              << util::format_fixed(s.latency_p99_ms, 3) << " ms, "
              << registry.num_active_shards(name) << " active shards, "
              << s.swap_count << " swaps\n";
  }
  if (swap_report) {
    std::cout << "hot swap m0: "
              << (swap_report->full_recompile
                      ? std::string("full recompile")
                      : std::to_string(swap_report->patched_weight_nodes) +
                            "/" +
                            std::to_string(swap_report->total_weight_nodes) +
                            " weight nodes patched")
              << ", swap epoch " << swap_report->swap_epoch << "\n";
  }

  write_trace_if_requested(args);
  if (!args.get_string("metrics-out").empty()) {
    // Per-model live metrics are already in the process registry (the
    // ModelRegistry wires every server); bridge the final snapshots too.
    for (const std::string& name : registry.model_names()) {
      serve::export_stats_metrics(obs::metrics(), name,
                                  registry.stats(name));
    }
    write_metrics_if_requested(args);
  }

  util::check(failures.load() == 0,
              std::to_string(failures.load()) +
                  " requests failed or returned a wrong-sized row");
  util::check(completed + shed_client == total_requests,
              "dropped requests: " + std::to_string(completed) +
                  " completed + " + std::to_string(shed_client) +
                  " shed != " + std::to_string(total_requests));
  util::check(shed_server == shed_client,
              "server shed accounting disagrees with the client");
  if (swap_report) {
    util::check(swaps >= 1, "swap ran but no server counted it");
    util::check(!swap_report->full_recompile,
                "sparse delta unexpectedly forced a full recompile");
  }
  if (smoke) std::cout << "\nSMOKE OK\n";
  return 0;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

int run(int argc, const char* const* argv) {
  util::ArgParser args(
      "dstee_serve — compile a (sparse) MLP/VGG/ResNet to CSR ops and serve "
      "it with a micro-batching thread pool under closed-loop load.");
  args.add_flag("model", "mlp | vgg19 | resnet18 | resnet50", "mlp")
      .add_flag("checkpoint",
                "dstee_run checkpoint to load (empty = random weights with "
                "a fresh random sparse topology)",
                "")
      .add_flag("in", "input features (mlp)", "32")
      .add_flag("hidden", "comma-separated hidden sizes (mlp)", "128,128")
      .add_flag("out", "output classes (mlp)", "8")
      .add_flag("batch-norm", "build the MLP with batch-norm", "false")
      .add_flag("image-size", "input resolution (vgg/resnet)", "12")
      .add_flag("classes", "output classes (vgg/resnet)", "8")
      .add_flag("width", "width multiplier (vgg/resnet)", "0.1")
      .add_flag("sparsity", "topology sparsity when no checkpoint", "0.9")
      .add_flag("threads", "server worker threads per shard", "2")
      .add_flag("shards", "replica worker groups (round-robin routing)",
                "1")
      .add_flag("max-batch", "micro-batch flush size", "16")
      .add_flag("max-delay-ms", "micro-batch flush deadline", "2.0")
      .add_flag("intra-op",
                "intra-op chunks per kernel on the runtime pool (0 = "
                "pool-wide)",
                "1")
      .add_flag("partition-rows",
                "split the heaviest CSR ops into cost-balanced row-range "
                "slices run in parallel: K ways (0/1 = off), or "
                "\"auto\"/\"auto:K\" to pick the ops to split from a "
                "measured profiling probe instead of the static cost model",
                "0")
      .add_flag("partition-threshold",
                "FLOPs share above which a CSR op is partitioned",
                "0.25")
      .add_flag("passes",
                "replace the pass pipeline with this comma-separated spec "
                "(registry names, \":\"-separated args), e.g. "
                "\"elide-dropout,fold-bn,fuse-epilogue,quantize:int8\" "
                "(empty = default pipeline; --partition-rows still appends)",
                "")
      .add_flag("kernel-backend",
                "pin the sparse-kernel backend (\"scalar\", \"avx2\"); "
                "empty = CPUID pick, or the DSTEE_KERNEL_BACKEND "
                "environment variable. Unsupported names fail loudly.",
                "")
      .add_flag("dump-plan",
                "print the active pass pipeline and the post-pass compile "
                "plan (shapes, nnz, FLOPs shares, partition/fusion "
                "annotations) and exit without serving",
                "false")
      .add_flag("clients", "closed-loop client threads", "4")
      .add_flag("requests",
                "total requests (across clients, or open-loop arrivals)",
                "2000")
      .add_flag("arrival-rate",
                "open-loop Poisson arrivals per second (0 = closed loop)",
                "0")
      .add_flag("registry",
                "serve this many independently-seeded MLP models from one "
                "ModelRegistry under mixed open-loop traffic (0 = classic "
                "single-model mode)",
                "0")
      .add_flag("swap-mid-run",
                "registry mode: hot-swap model m0 with a sparse delta "
                "halfway through the arrival schedule",
                "false")
      .add_flag("max-shards",
                "scaling headroom per model (0 = --shards; registry mode)",
                "0")
      .add_flag("queue-quota",
                "per-shard admission quota for registry-mode try_submit "
                "(0 = shed only at queue capacity)",
                "0")
      .add_flag("autoscale",
                "registry mode: grow/shrink each model's active shards "
                "from queue depth",
                "false")
      .add_flag("trace",
                "record sampled request traces and write Chrome trace-event "
                "JSON (Perfetto-loadable) to this file after the run",
                "")
      .add_flag("trace-sample",
                "trace every Nth request (with --trace; 1 = every request)",
                "1")
      .add_flag("metrics-out",
                "write Prometheus text exposition of the obs metrics "
                "registry (latency histogram, request/batch counters, "
                "bridged stats) to this file after the run",
                "")
      .add_flag("profile-ops",
                "accumulate per-PlanOp wall time across all forwards and "
                "print the measured breakdown after the run",
                "false")
      .add_flag("seed", "random seed", "1")
      .add_flag("smoke",
                "tiny self-checking run for CI (overrides load knobs)",
                "false");
  if (!args.parse(argc, argv)) return 0;

  // Backend first: every mode (classic, registry, --dump-plan probe) runs
  // its kernels under the pinned choice. Unknown names fail loudly here.
  const std::string backend_name = args.get_string("kernel-backend");
  if (!backend_name.empty()) {
    kernels::simd::set_active_backend(backend_name);
  }
  std::cout << "kernel backend: " << kernels::simd::active_backend().name
            << "\n";

  if (args.get_int("registry") > 0) return run_registry(args);

  const bool smoke = args.get_bool("smoke");
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  ServeModel m = build_model(args, smoke, rng);
  std::string ckpt = args.get_string("checkpoint");

  // Randomly-initialized conv nets carry batch-norm: push a few
  // training-mode batches through so running statistics move off init and
  // eval-BN folding is non-trivial. Pointless (and skipped) when a
  // checkpoint will overwrite every parameter and BN buffer anyway.
  if (ckpt.empty() && m.sample_shape.rank() == 3) {
    util::Rng warm_rng(rng.fork("bn-warmup"));
    for (int i = 0; i < 2; ++i) {
      tensor::Tensor warm = batched(m.sample_shape, 4);
      tensor::fill_normal(warm, warm_rng, 0.0f, 1.0f);
      m.module->forward(warm);
    }
  }
  m.module->set_training(false);

  serve::CompileOptions copts;
  copts.intra_op_threads =
      static_cast<std::size_t>(args.get_int("intra-op"));
  // Shape-aware passes built from a --passes spec (partition-rows) need
  // the per-sample input shape for FLOPs-share costing.
  copts.sample_shape = m.sample_shape;
  // Pin the backend into the bound ops too (not just the process-wide
  // active choice), so a later set_active_backend cannot move this net.
  copts.kernel_backend = backend_name;
  copts.profile_ops = args.get_bool("profile-ops");

  std::optional<sparse::SparseModel> smodel;
  if (ckpt.empty()) {
    smodel.emplace(*m.module, args.get_double("sparsity"),
                   sparse::DistributionKind::kErk, rng);
    if (smoke && m.sample_shape.rank() == 3) {
      // Smoke for conv models exercises the full artifact path: write the
      // random-topology model out as a checkpoint and serve THAT.
      ckpt = "serve_smoke_" + args.get_string("model") + ".bin";
      train::save_checkpoint(ckpt, *m.module, &*smodel);
    }
  }
  // The staged compiler: default pipeline (elide dropout, fold BN, free
  // after last use), or a named-registry spec via --passes; the classic
  // --partition-rows flags still append PartitionRows on top of either.
  serve::Compiler compiler(copts);
  const std::string pass_spec = args.get_string("passes");
  if (!pass_spec.empty()) compiler.pipeline_from_spec(pass_spec);
  const std::string pr_spec = args.get_string("partition-rows");
  {
    serve::PartitionRowsOptions popts;
    bool add_partition = false;
    if (pr_spec == "auto" || pr_spec.rfind("auto:", 0) == 0) {
      // "auto" / "auto:K": pick the ops to split from a measured probe.
      popts.auto_mode = true;
      add_partition = true;
      if (pr_spec.size() > 5) {
        popts.ways = static_cast<std::size_t>(std::stoul(pr_spec.substr(5)));
      }
    } else {
      popts.ways = static_cast<std::size_t>(std::stoul(pr_spec));
      add_partition = popts.ways >= 2;
    }
    if (add_partition) {
      popts.min_cost_share = args.get_double("partition-threshold");
      popts.sample_shape = m.sample_shape;
      compiler.add_pass(std::make_unique<serve::PartitionRows>(popts));
    }
  }

  if (!ckpt.empty()) {
    // dstee_run saves parameter values only; masked weights are stored
    // as exact zeros, so dense_eps=0 recovers the trained topology.
    train::load_checkpoint(ckpt, *m.module, smodel ? &*smodel : nullptr);
  }
  serve::Plan plan = compiler.plan(*m.module, smodel ? &*smodel : nullptr);
  if (args.get_bool("dump-plan")) {
    // Inspection mode: print the active pipeline and the post-pass plan,
    // then stop before binding.
    std::cout << "pipeline: " << compiler.pipeline_spec() << "\n";
    std::cout << plan.dump(&m.sample_shape);
    std::cout << "PLAN OK\n";
    return 0;
  }
  serve::CompiledNet net = compiler.bind(std::move(plan));
  std::cout << net.summary();
  const double sp_flops = net.flops_per_sample(m.sample_shape);
  const double dn_flops = net.dense_flops_per_sample(m.sample_shape);
  std::cout << "flops/sample: " << util::format_fixed(sp_flops, 0)
            << " sparse vs " << util::format_fixed(dn_flops, 0)
            << " dense (" << util::format_fixed(dn_flops / sp_flops, 1)
            << "x compression)\n";

  // Sanity: the compiled program must reproduce the eval-mode dense
  // forward. Cheap, and turns --smoke into a real correctness gate. An
  // int8-quantized net is NOT elementwise-close to fp32 — for it the
  // gate is per-sample top-1 agreement, the serving-level contract.
  {
    tensor::Tensor probe = batched(m.sample_shape, 4);
    util::Rng probe_rng(rng.fork("probe"));
    tensor::fill_normal(probe, probe_rng, 0.0f, 1.0f);
    const tensor::Tensor dense_out = m.module->forward(probe);
    const tensor::Tensor compiled_out = net.forward(probe);
    if (net.num_quantized_ops() == 0) {
      util::check(compiled_out.allclose(dense_out, 1e-4f),
                  "compiled forward diverged from dense eval forward");
      std::cout << "compiled == dense eval forward on probe batch [ok]\n";
    } else {
      const std::size_t classes = compiled_out.dim(1);
      for (std::size_t n = 0; n < compiled_out.dim(0); ++n) {
        std::size_t dense_top = 0, q_top = 0;
        for (std::size_t c = 1; c < classes; ++c) {
          if (dense_out[n * classes + c] >
              dense_out[n * classes + dense_top]) {
            dense_top = c;
          }
          if (compiled_out[n * classes + c] >
              compiled_out[n * classes + q_top]) {
            q_top = c;
          }
        }
        util::check(dense_top == q_top,
                    "quantized forward changed a probe sample's top-1");
      }
      std::cout << "int8 top-1 == dense eval top-1 on probe batch [ok]\n";
    }
  }

  serve::ServerConfig scfg;
  scfg.num_threads = static_cast<std::size_t>(args.get_int("threads"));
  scfg.num_shards = static_cast<std::size_t>(args.get_int("shards"));
  scfg.max_batch = static_cast<std::size_t>(args.get_int("max-batch"));
  scfg.max_delay_ms = args.get_double("max-delay-ms");
  const double arrival_rate = args.get_double("arrival-rate");
  std::size_t clients = static_cast<std::size_t>(args.get_int("clients"));
  std::size_t total_requests =
      static_cast<std::size_t>(args.get_int("requests"));
  if (smoke) {
    // Smoke shrinks the load but keeps --shards/--arrival-rate, so the
    // sharded and open-loop paths get their own CI smokes.
    scfg.num_threads = 2;
    scfg.max_batch = 8;
    scfg.max_delay_ms = 1.0;
    clients = 2;
    total_requests = 64;
  }
  util::check(clients >= 1, "need at least one client");
  util::check(arrival_rate >= 0.0, "arrival rate must be non-negative");

  if (!args.get_string("metrics-out").empty()) {
    scfg.metrics = &obs::metrics();
    scfg.metrics_label = args.get_string("model");
  }
  arm_trace_if_requested(args);

  serve::InferenceServer server(net, scfg);
  std::atomic<std::size_t> failures{0};
  util::Timer wall;
  double offered_rps = 0.0;

  if (arrival_rate > 0.0) {
    // Open-loop (Poisson) load: arrivals follow a rate process that does
    // NOT wait for completions, so queueing delay lands in the latency
    // tail instead of silently throttling the offered load the way a
    // closed loop does. The main thread dispatches on exponential
    // inter-arrival gaps while a reaper thread consumes futures
    // concurrently, so reaping never delays an arrival. submit() can
    // still block when a shard queue hits capacity — that stall is the
    // finite-buffer reality, and it is measured and reported as
    // backpressure-blocked time.
    //
    // Two named streams rooted directly at --seed: the inter-arrival gap
    // sequence must be a pure function of the seed — not entangled with
    // how many draws model construction or payload synthesis consumed —
    // so the same offered-load trace reproduces across machines, models
    // and payload changes.
    util::Rng openloop_root(static_cast<std::uint64_t>(args.get_int("seed")));
    util::Rng gap_rng = openloop_root.fork("poisson-arrivals");
    util::Rng payload_rng = openloop_root.fork("openloop-payload");
    // Guards the function-local inflight queue of this load generator.
    // dstee-lint: allow(unguarded-mutex) -- local lock, not a member
    util::Mutex fmu;
    util::CondVar fcv;
    std::deque<std::future<tensor::Tensor>> inflight;
    bool dispatch_done = false;
    // The server's own threads all live on runtime::Pool or
    // InferenceServer workers; this is the load-generator client side.
    // dstee-lint: allow(raw-thread) -- load-gen client, not library code
    std::thread reaper([&] {
      for (;;) {
        std::future<tensor::Tensor> f;
        {
          util::UniqueLock lock(fmu);
          while (!dispatch_done && inflight.empty()) fcv.wait(lock);
          if (inflight.empty()) return;  // dispatch done and drained
          f = std::move(inflight.front());
          inflight.pop_front();
        }
        try {
          if (f.get().numel() != m.out_features) failures.fetch_add(1);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
    using Clock = std::chrono::steady_clock;
    Clock::time_point next_arrival = Clock::now();
    for (std::size_t i = 0; i < total_requests; ++i) {
      const double gap_s =
          -std::log(1.0 - gap_rng.uniform()) / arrival_rate;
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap_s));
      std::this_thread::sleep_until(next_arrival);  // no-op when behind
      tensor::Tensor sample(m.sample_shape);
      tensor::fill_normal(sample, payload_rng, 0.0f, 1.0f);
      try {
        std::future<tensor::Tensor> f = server.submit(std::move(sample));
        {
          util::MutexLock lock(fmu);
          inflight.push_back(std::move(f));
        }
        fcv.notify_one();
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    }
    offered_rps = static_cast<double>(total_requests) / wall.seconds();
    {
      util::MutexLock lock(fmu);
      dispatch_done = true;
    }
    fcv.notify_all();
    reaper.join();
  } else {
    std::atomic<std::size_t> next{0};
    auto client = [&](std::size_t client_id) {
      util::Rng crng(static_cast<std::uint64_t>(args.get_int("seed")) +
                     1000 + client_id);
      while (next.fetch_add(1) < total_requests) {
        tensor::Tensor sample(m.sample_shape);
        tensor::fill_normal(sample, crng, 0.0f, 1.0f);
        try {
          const tensor::Tensor out = server.submit(std::move(sample)).get();
          if (out.numel() != m.out_features) failures.fetch_add(1);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    };
    // dstee-lint: allow(raw-thread) -- closed-loop load-gen clients.
    std::vector<std::thread> pool;
    for (std::size_t c = 1; c < clients; ++c) pool.emplace_back(client, c);
    client(0);
    for (auto& t : pool) t.join();
  }
  const double wall_s = wall.seconds();
  server.shutdown();

  const serve::StatsSnapshot stats = server.stats();
  if (arrival_rate > 0.0) {
    std::cout << "\n--- load generator (open-loop Poisson, "
              << util::format_fixed(arrival_rate, 1) << " req/s offered) "
              << "---\n"
              << stats.to_string() << "offered rate:    "
              << util::format_fixed(offered_rps, 1)
              << " req/s (achieved dispatch)\n"
              << "tail latency:    p50 "
              << util::format_fixed(stats.latency_p50_ms, 3) << " ms | p99 "
              << util::format_fixed(stats.latency_p99_ms, 3)
              << " ms | p99.9 "
              << util::format_fixed(stats.latency_p999_ms, 3) << " ms\n";
  } else {
    std::cout << "\n--- load generator (" << clients
              << " closed-loop clients) ---\n"
              << stats.to_string() << "client-side throughput: "
              << util::format_fixed(
                     static_cast<double>(stats.requests) / wall_s, 1)
              << " req/s\n";
  }
  if (server.num_shards() > 1) {
    std::cout << "\nper-shard (" << server.num_shards()
              << " replica groups, round-robin-by-shape routing):\n";
    for (std::size_t sh = 0; sh < server.num_shards(); ++sh) {
      const serve::StatsSnapshot ss = server.shard_stats(sh);
      std::cout << "  shard " << sh << ": " << ss.requests << " reqs in "
                << ss.batches << " batches (mean "
                << util::format_fixed(ss.mean_batch_size, 2) << "), p99 "
                << util::format_fixed(ss.latency_p99_ms, 3)
                << " ms, queue peak " << ss.queue_peak << ", blocked "
                << util::format_fixed(ss.blocked_ms, 3) << " ms\n";
    }
  }

  print_op_profile(net);
  write_trace_if_requested(args);
  if (!args.get_string("metrics-out").empty()) {
    // Bridge the final snapshot alongside the live hot-path metrics, then
    // write the whole registry as one Prometheus exposition.
    serve::export_stats_metrics(obs::metrics(), args.get_string("model"),
                                stats);
    write_metrics_if_requested(args);
  }

  util::check(failures.load() == 0, std::to_string(failures.load()) +
                                        " requests failed or returned a "
                                        "wrong-sized row");
  util::check(stats.requests == total_requests,
              "server completed " + std::to_string(stats.requests) + " of " +
                  std::to_string(total_requests) + " requests");
  if (smoke) std::cout << "\nSMOKE OK\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main(int argc, char** argv) {
  try {
    return dstee::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
