// dstee_serve — sparse inference server + closed-loop load generator.
//
// Compiles an MLP into a CSR CompiledNet, starts an InferenceServer
// (thread pool + micro-batching queue), drives it with closed-loop client
// threads, and reports latency percentiles and throughput.
//
//   # serve a checkpoint trained by dstee_run (same architecture flags):
//   ./build/tools/dstee_run --model mlp --sparsity 0.95 --checkpoint m.bin
//   ./build/tools/dstee_serve --checkpoint m.bin --in 32 --hidden 128,128
//       --out 8 --clients 8 --requests 4000
//   # or serve a randomly-initialized sparse topology (no checkpoint):
//   ./build/tools/dstee_serve --sparsity 0.9 --requests 2000
// (join wrapped lines when copying; see --help for the full flag set)
#include <atomic>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "models/mlp.hpp"
#include "serve/compiled_net.hpp"
#include "serve/server.hpp"
#include "sparse/sparse_model.hpp"
#include "tensor/init.hpp"
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace dstee {
namespace {

std::vector<std::size_t> parse_hidden(const std::string& text) {
  std::vector<std::size_t> sizes;
  for (const std::string& part : util::split(text, ',')) {
    const std::string t = util::trim(part);
    if (t.empty()) continue;
    const long v = std::stol(t);
    util::check(v > 0, "hidden sizes must be positive: " + text);
    sizes.push_back(static_cast<std::size_t>(v));
  }
  return sizes;
}

int run(int argc, const char* const* argv) {
  util::ArgParser args(
      "dstee_serve — compile a (sparse) MLP to CSR ops and serve it with a "
      "micro-batching thread pool under closed-loop load.");
  args.add_flag("checkpoint",
                "dstee_run checkpoint to load (empty = random weights with "
                "a fresh random sparse topology)",
                "")
      .add_flag("in", "input features", "32")
      .add_flag("hidden", "comma-separated hidden sizes", "128,128")
      .add_flag("out", "output classes", "8")
      .add_flag("batch-norm", "build the MLP with batch-norm", "false")
      .add_flag("sparsity", "topology sparsity when no checkpoint", "0.9")
      .add_flag("threads", "server worker threads", "2")
      .add_flag("max-batch", "micro-batch flush size", "16")
      .add_flag("max-delay-ms", "micro-batch flush deadline", "2.0")
      .add_flag("intra-threads", "row-parallel threads inside each SpMM",
                "1")
      .add_flag("clients", "closed-loop client threads", "4")
      .add_flag("requests", "total requests across all clients", "2000")
      .add_flag("seed", "random seed", "1")
      .add_flag("smoke",
                "tiny self-checking run for CI (overrides load knobs)",
                "false");
  if (!args.parse(argc, argv)) return 0;

  const bool smoke = args.get_bool("smoke");

  models::MlpConfig mcfg;
  mcfg.in_features = static_cast<std::size_t>(args.get_int("in"));
  mcfg.hidden = parse_hidden(args.get_string("hidden"));
  mcfg.out_features = static_cast<std::size_t>(args.get_int("out"));
  mcfg.batch_norm = args.get_bool("batch-norm");
  if (smoke) mcfg.hidden = {32, 32};

  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  models::Mlp model(mcfg, rng);
  model.set_training(false);

  serve::CompileOptions copts;
  copts.intra_op_threads =
      static_cast<std::size_t>(args.get_int("intra-threads"));

  const std::string ckpt = args.get_string("checkpoint");
  std::optional<sparse::SparseModel> smodel;
  serve::CompiledNet net = [&] {
    if (!ckpt.empty()) {
      // dstee_run saves parameter values only; masked weights are stored
      // as exact zeros, so dense_eps=0 recovers the trained topology.
      return serve::CompiledNet::from_checkpoint(ckpt, model, nullptr,
                                                 copts);
    }
    smodel.emplace(model, args.get_double("sparsity"),
                   sparse::DistributionKind::kErk, rng);
    return serve::CompiledNet::compile(model, &*smodel, copts);
  }();
  std::cout << net.summary();

  // Sanity: the compiled program must reproduce the eval-mode dense
  // forward. Cheap, and turns --smoke into a real correctness gate.
  {
    tensor::Tensor probe({4, mcfg.in_features});
    util::Rng probe_rng(rng.fork("probe"));
    tensor::fill_normal(probe, probe_rng, 0.0f, 1.0f);
    const tensor::Tensor dense_out = model.forward(probe);
    const tensor::Tensor compiled_out = net.forward(probe);
    util::check(compiled_out.allclose(dense_out, 1e-4f),
                "compiled forward diverged from dense eval forward");
    std::cout << "compiled == dense eval forward on probe batch [ok]\n";
  }

  serve::ServerConfig scfg;
  scfg.num_threads = static_cast<std::size_t>(args.get_int("threads"));
  scfg.max_batch = static_cast<std::size_t>(args.get_int("max-batch"));
  scfg.max_delay_ms = args.get_double("max-delay-ms");
  std::size_t clients = static_cast<std::size_t>(args.get_int("clients"));
  std::size_t total_requests =
      static_cast<std::size_t>(args.get_int("requests"));
  if (smoke) {
    scfg.num_threads = 2;
    scfg.max_batch = 8;
    scfg.max_delay_ms = 1.0;
    clients = 2;
    total_requests = 64;
  }
  util::check(clients >= 1, "need at least one client");

  serve::InferenceServer server(net, scfg);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  util::Timer wall;

  auto client = [&](std::size_t client_id) {
    util::Rng crng(static_cast<std::uint64_t>(args.get_int("seed")) + 1000 +
                   client_id);
    while (next.fetch_add(1) < total_requests) {
      tensor::Tensor sample({mcfg.in_features});
      tensor::fill_normal(sample, crng, 0.0f, 1.0f);
      try {
        const tensor::Tensor out = server.submit(std::move(sample)).get();
        if (out.numel() != mcfg.out_features) failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> pool;
  for (std::size_t c = 1; c < clients; ++c) pool.emplace_back(client, c);
  client(0);
  for (auto& t : pool) t.join();
  const double wall_s = wall.seconds();
  server.shutdown();

  const serve::StatsSnapshot stats = server.stats();
  std::cout << "\n--- load generator (" << clients << " closed-loop clients) "
            << "---\n"
            << stats.to_string() << "client-side throughput: "
            << util::format_fixed(
                   static_cast<double>(stats.requests) / wall_s, 1)
            << " req/s\n";

  util::check(failures.load() == 0, std::to_string(failures.load()) +
                                        " requests failed or returned a "
                                        "wrong-sized row");
  util::check(stats.requests == total_requests,
              "server completed " + std::to_string(stats.requests) + " of " +
                  std::to_string(total_requests) + " requests");
  if (smoke) std::cout << "\nSMOKE OK\n";
  return 0;
}

}  // namespace
}  // namespace dstee

int main(int argc, char** argv) {
  try {
    return dstee::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
