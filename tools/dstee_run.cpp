// dstee_run — command-line experiment runner.
//
// Runs a single sparse-training experiment chosen entirely by flags, prints
// per-epoch progress and a summary, and optionally writes a checkpoint.
//
//   ./build/tools/dstee_run --model vgg19 --method dst-ee
//       --sparsity 0.95 --epochs 16 --seed 3 --checkpoint out/run.bin
// (one command; join the lines when copying)
//
// See --help for the full flag set.
#include <iostream>

#include "data/synthetic_images.hpp"
#include "data/synthetic_tabular.hpp"
#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "train/checkpoint.hpp"
#include "train/experiment.hpp"
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace dstee {
namespace {

int run(int argc, const char* const* argv) {
  util::ArgParser args(
      "dstee_run — train one model with one sparse-training method on a "
      "synthetic dataset and report accuracy / sparsity / FLOPs.");
  args.add_flag("model", "vgg19 | resnet50 | mlp", "mlp")
      .add_flag("method",
                "dense | snip | grasp | synflow | magnitude | random | str | "
                "sis | deepr | set | rigl | rigl-itop | mest | snfs | dsr | "
                "dst-ee | gap",
                "dst-ee")
      .add_flag("sparsity", "global sparsity in [0,1)", "0.9")
      .add_flag("distribution", "erk | er | uniform", "erk")
      .add_flag("epochs", "training epochs", "16")
      .add_flag("batch", "minibatch size", "32")
      .add_flag("lr", "peak learning rate (cosine annealed)", "0.08")
      .add_flag("delta-t", "iterations between mask updates", "8")
      .add_flag("alpha", "initial drop fraction", "0.2")
      .add_flag("c", "DST-EE exploration coefficient", "1e-3")
      .add_flag("eps", "DST-EE epsilon", "0.1")
      .add_flag("classes", "number of classes in the synthetic task", "8")
      .add_flag("image-size", "image resolution (vgg19/resnet50)", "12")
      .add_flag("width", "model width multiplier", "0.1")
      .add_flag("seed", "random seed", "1")
      .add_flag("checkpoint", "path to save final weights (optional)", "");
  if (!args.parse(argc, argv)) return 0;

  train::ClassificationConfig cfg;
  cfg.method = train::parse_method(args.get_string("method"));
  cfg.sparsity = args.get_double("sparsity");
  cfg.distribution =
      sparse::parse_distribution(args.get_string("distribution"));
  cfg.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch"));
  cfg.lr = args.get_double("lr");
  cfg.dst.delta_t = static_cast<std::size_t>(args.get_int("delta-t"));
  cfg.dst.drop_fraction = args.get_double("alpha");
  cfg.dst.c = args.get_double("c");
  cfg.dst.eps = args.get_double("eps");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  if (cfg.method == train::MethodKind::kDense) cfg.sparsity = 0.0;

  const std::string model_kind = args.get_string("model");
  util::Rng rng(cfg.seed);
  train::ClassificationResult result;
  std::unique_ptr<nn::Module> model;

  if (model_kind == "mlp") {
    data::SyntheticTabularConfig dcfg;
    dcfg.num_classes = static_cast<std::size_t>(args.get_int("classes"));
    dcfg.features = 32;
    dcfg.train_per_class = 96;
    dcfg.test_per_class = 32;
    dcfg.seed = cfg.seed;
    const data::SyntheticTabularDataset train_set(
        dcfg, data::SyntheticTabularDataset::Split::kTrain);
    const data::SyntheticTabularDataset test_set(
        dcfg, data::SyntheticTabularDataset::Split::kTest);
    models::MlpConfig mcfg;
    mcfg.in_features = 32;
    mcfg.hidden = {128, 128};
    mcfg.out_features = dcfg.num_classes;
    auto mlp = std::make_unique<models::Mlp>(mcfg, rng);
    const auto fm = mlp->flops_model();
    result = train::run_classification(*mlp, &fm, train_set, test_set, cfg);
    model = std::move(mlp);
  } else {
    data::SyntheticImageConfig dcfg;
    dcfg.num_classes = static_cast<std::size_t>(args.get_int("classes"));
    dcfg.image_size = static_cast<std::size_t>(args.get_int("image-size"));
    dcfg.train_per_class = 60;
    dcfg.test_per_class = 25;
    dcfg.signal = 0.9;
    dcfg.spatial_noise = 1.0;
    dcfg.pixel_noise = 0.8;
    dcfg.seed = cfg.seed;
    const data::SyntheticImageDataset train_set(
        dcfg, data::SyntheticImageDataset::Split::kTrain);
    const data::SyntheticImageDataset test_set(
        dcfg, data::SyntheticImageDataset::Split::kTest);
    const double width = args.get_double("width");
    if (model_kind == "vgg19") {
      models::VggConfig vcfg;
      vcfg.depth = 19;
      vcfg.image_size = dcfg.image_size;
      vcfg.num_classes = dcfg.num_classes;
      vcfg.width_multiplier = width;
      auto vgg = std::make_unique<models::Vgg>(vcfg, rng);
      const auto fm = vgg->flops_model();
      result =
          train::run_classification(*vgg, &fm, train_set, test_set, cfg);
      model = std::move(vgg);
    } else if (model_kind == "resnet50") {
      models::ResNetConfig rcfg;
      rcfg.depth = 50;
      rcfg.image_size = dcfg.image_size;
      rcfg.num_classes = dcfg.num_classes;
      rcfg.width_multiplier = width;
      auto resnet = std::make_unique<models::ResNet>(rcfg, rng);
      const auto fm = resnet->flops_model();
      result =
          train::run_classification(*resnet, &fm, train_set, test_set, cfg);
      model = std::move(resnet);
    } else {
      util::fail("unknown model: " + model_kind +
                 " (expected mlp | vgg19 | resnet50)");
    }
  }

  std::cout << "method: " << train::to_string(cfg.method)
            << "   model: " << model_kind << "\n";
  for (const auto& epoch : result.history) {
    std::cout << "  epoch " << epoch.epoch + 1 << ": loss "
              << util::format_fixed(epoch.train_loss, 4) << ", test acc "
              << util::format_fixed(epoch.test_accuracy * 100, 2)
              << "%, lr " << util::format_fixed(epoch.lr, 4) << "\n";
  }
  std::cout << "\nbest accuracy:      "
            << util::format_fixed(result.best_test_accuracy * 100, 2)
            << "%\nachieved sparsity:  "
            << util::format_fixed(result.achieved_sparsity * 100, 2)
            << "%\nexploration rate R: "
            << util::format_fixed(result.exploration_rate, 3)
            << "\ntrain FLOPs:        "
            << util::format_multiple(result.train_flops_multiple)
            << " of dense\ninference FLOPs:    "
            << util::format_multiple(result.inference_flops_multiple)
            << " of dense\n";

  const std::string ckpt = args.get_string("checkpoint");
  if (!ckpt.empty()) {
    train::save_checkpoint(ckpt, *model);
    std::cout << "checkpoint written: " << ckpt << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace dstee

int main(int argc, char** argv) {
  try {
    return dstee::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
