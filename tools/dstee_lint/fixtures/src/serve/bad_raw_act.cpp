// Known-bad fixture: serve-layer code calling a raw activation kernel.
// Eval ops must compose a kernels::Epilogue instead (fusable into the
// producing CSR op); the raw kernels are training-path compat wrappers.
#include "kernels/activations.hpp"
#include "kernels/epilogue.hpp"

namespace dstee::serve {

void bad_raw_activation(tensor::Tensor& x) {
  kernels::relu(x);  // FIRES serve-epilogue: raw kernel in src/serve/
}

void good_epilogue(const tensor::Tensor& x) {
  kernels::Epilogue ep;
  ep.has_act = true;
  (void)kernels::apply_epilogue(x, ep);  // blessed pattern: stays quiet
}

}  // namespace dstee::serve
