// Fixture: two [unguarded-mutex] shapes —
//  (a) a naked std::mutex member, invisible to thread-safety analysis;
//  (b) a util::Mutex with no DSTEE_GUARDED_BY/DSTEE_REQUIRES user in the
//      file, i.e. a lock protecting nothing nameable.
#pragma once

#include <mutex>

#include "util/sync.hpp"

namespace dstee::serve {

class BadMutexHolder {
 private:
  std::mutex naked_mu_;
  util::Mutex orphan_mu_;
  int value_ = 0;
};

}  // namespace dstee::serve
