// Fixture for [evalop-clone]: every LEAF EvalOp subclass must override
// clone(). The hierarchy below exercises all the shapes the rule must
// distinguish:
//   EvalOp            base — exempt
//   MidOp             intermediate with derivers, no clone — exempt
//   LeafWithClone     leaf overriding clone — clean
//   LeafNoClone       leaf (final, transitively via MidOp) missing clone — FLAGGED
//   DirectNoClone     leaf deriving EvalOp directly, missing clone — FLAGGED
//   TmplMidOp<T>      class-template intermediate with derivers — exempt
//   TmplLeafNoClone   leaf via a templated base (TmplMidOp<int>) — FLAGGED
#pragma once

#include <memory>

namespace dstee::serve {

class EvalOp {
 public:
  virtual ~EvalOp() = default;
  virtual std::unique_ptr<EvalOp> clone() const = 0;
};

class MidOp : public EvalOp {
 public:
  int shared_config = 0;
};

class LeafWithClone final : public MidOp {
 public:
  std::unique_ptr<EvalOp> clone() const override;
};

class LeafNoClone final : public MidOp {
 public:
  int state = 0;
};

class DirectNoClone final : public EvalOp {
 public:
  int state = 0;
};

template <typename T>
class TmplMidOp : public EvalOp {
 public:
  T shared_config{};
};

class TmplLeafNoClone final : public TmplMidOp<int> {
 public:
  int state = 0;
};

}  // namespace dstee::serve
