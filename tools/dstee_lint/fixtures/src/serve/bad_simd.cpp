// Known-bad: SIMD intrinsics outside src/kernels/simd/. Both the
// intrinsics-header include and a direct intrinsic identifier must fire
// simd-confinement; serve code talks to kernels/simd/backend.hpp only.
#include <immintrin.h>

namespace fixture {

inline float first_lane(const float* p) {
  const __m256 v = _mm256_loadu_ps(p);
  float out[8];
  _mm256_storeu_ps(out, v);
  return out[0];
}

}  // namespace fixture
