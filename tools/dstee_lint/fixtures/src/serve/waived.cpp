// Fixture: the waiver comment silences a finding on the next line (and a
// same-line waiver silences its own line) — no finding expected.
#include <thread>

#include "util/sync.hpp"

namespace dstee::serve {

void waived_spawn() {
  // dstee-lint: allow(raw-thread) -- fixture for the comment-above form
  std::thread t([] {});
  t.join();
}

void waived_inline() {
  util::Mutex local_mu;  // dstee-lint: allow(unguarded-mutex) -- fixture
}

}  // namespace dstee::serve
