// Fixture: a util::Mutex with a DSTEE_GUARDED_BY user in the same file is
// the blessed pattern — no finding expected.
#pragma once

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace dstee::serve {

class OkMutexHolder {
 private:
  util::Mutex mu_;
  int value_ DSTEE_GUARDED_BY(mu_) = 0;
};

}  // namespace dstee::serve
