// Known-bad fixture: serve-layer code reading steady_clock directly.
// Serve timestamps go through the obs clock surface (obs::Clock /
// obs::now / obs::now_ns in src/obs/clock.hpp) so trace spans, stats and
// metrics all share one time base. No waiver exists for this rule.
#include <chrono>

#include "obs/clock.hpp"

namespace dstee::serve {

double bad_direct_clock() {
  // FIRES serve-timing: steady_clock named in src/serve/
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

std::int64_t good_obs_clock() {
  return obs::now_ns();  // blessed pattern: stays quiet
}

}  // namespace dstee::serve
