// Fixture: [hot-swap-rcu] — a hot-swapped CompiledNet version held in a
// plain shared_ptr member. A worker loading `net_` while apply_delta
// publishes a new version races on the control block; the blessed holder
// is util::RcuCell<CompiledNet> (src/util/rcu.hpp), shown below, which
// stays clean. Locals snapshotting a loaded version are also fine.
#pragma once

#include "serve/compiled_net.hpp"
#include "util/rcu.hpp"

namespace dstee::serve {

class BadHotSwapHolder {
 public:
  void use() {
    // OK: a local snapshot of the published version — no trailing
    // underscore, not a swappable field.
    std::shared_ptr<const CompiledNet> snapshot = cell_.load();
    (void)snapshot;
  }

 private:
  std::shared_ptr<const CompiledNet> net_;  // BAD: tears under swap
  util::RcuCell<CompiledNet> cell_;         // OK: atomic publication
};

}  // namespace dstee::serve
