// Fixture: std::thread INSIDE src/runtime/ is the sanctioned spawn site —
// no finding expected.
#include <thread>

namespace dstee::runtime {

void ok_fanout() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace dstee::runtime
