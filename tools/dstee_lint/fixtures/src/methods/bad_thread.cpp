// Fixture: raw std::thread in library code (outside src/runtime/) must
// trigger [raw-thread]. The direct <thread> include keeps the
// include-hygiene rule quiet so this file isolates exactly one rule.
#include <thread>

namespace dstee::methods {

void bad_fanout() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace dstee::methods
