// Fixture for [include-hygiene]: std::atomic used without a direct
// #include <atomic>, plus a duplicate #include line.
#include <cstddef>
#include <cstddef>

namespace dstee::data {

struct Counter {
  // <atomic> arrives only transitively (here: not at all) — flagged.
  void bump();
};

inline int probe(std::atomic<int>* c) { return c->load(); }

}  // namespace dstee::data
