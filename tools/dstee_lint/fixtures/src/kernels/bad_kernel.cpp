// Fixture: a kernel reading runtime::default_pool() (and the
// intra_op_default() knob) directly instead of accepting a
// runtime::IntraOp — both call sites must trigger [kernel-intraop].
// (Fixtures are linted, never compiled, so no declarations needed.)
#include <cstddef>

namespace dstee::kernels {

void bad_kernel() {
  auto& pool = runtime::default_pool();
  (void)pool;
  (void)runtime::intra_op_default();
}

}  // namespace dstee::kernels
