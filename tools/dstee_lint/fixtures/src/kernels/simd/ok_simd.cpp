// Blessed pattern: intrinsics ARE allowed under src/kernels/simd/ — the
// one directory simd-confinement exempts. Must produce no findings.
#include <immintrin.h>

namespace fixture {

inline float sum2(const float* p) {
  const __m128 v = _mm_loadu_ps(p);
  float out[4];
  _mm_storeu_ps(out, v);
  return out[0] + out[1];
}

}  // namespace fixture
