#!/usr/bin/env python3
"""dstee_lint: project-specific static checks the compiler cannot express.

Clang Thread Safety Analysis (src/util/thread_annotations.hpp + the
`clang-tsa` preset) proves lock DISCIPLINE — that guarded members are only
touched with the right mutex held. This lint enforces the repo invariants
that sit a level above the type system:

  raw-thread       No raw std::thread in library code. Threads live in
                   src/runtime/ (the pool) or serve's worker groups;
                   everything else fans out through runtime::IntraOp.
                   bench/ and tests/ are load generators and out of scope.
  unguarded-mutex  (a) No naked std::mutex / std::condition_variable —
                   use util::Mutex / util::CondVar so the thread-safety
                   analysis can see the capability (src/util/sync.hpp is
                   the one definition site). (b) Every util::Mutex
                   declaration must have at least one DSTEE_GUARDED_BY /
                   DSTEE_REQUIRES / ... user in the same file; a mutex
                   protecting nothing nameable takes a waiver comment.
  evalop-clone     Every leaf serve::EvalOp subclass overrides clone() —
                   a clone-less op silently shares weights across replica
                   shards, defeating replica isolation.
  kernel-intraop   src/kernels/ never reads runtime::default_pool() or
                   intra_op_default() directly; kernels accept a
                   runtime::IntraOp so the caller owns placement policy.
  serve-epilogue   src/serve/ never calls the raw activation kernels
                   (kernels::relu / add_relu / leaky_relu / sigmoid /
                   tanh) — those are training-path compat wrappers. Eval
                   ops compose a kernels::Epilogue and apply_epilogue so
                   activations stay fusable into the producing CSR op.
  hot-swap-rcu     No plain std::shared_ptr<const CompiledNet> MEMBERS
                   (trailing-underscore fields). A hot-swapped version
                   pointer read by workers while a swap publishes tears
                   without atomics; hold it in util::RcuCell<CompiledNet>
                   (src/util/rcu.hpp). Locals snapshotting a loaded
                   version are fine.
  simd-confinement SIMD intrinsics (<immintrin.h>-family includes,
                   _mm*/__m* identifiers) live only under
                   src/kernels/simd/. Everything else talks to the
                   dispatch header (kernels/simd/backend.hpp), so a
                   build without AVX2 — or a future backend — never
                   ripples past that one directory.
  include-hygiene  Concurrency symbols (std::mutex, std::thread,
                   std::atomic, ...) require a DIRECT include of their
                   header — the concurrency surface must state its
                   dependencies, not inherit them — and duplicate
                   includes are flagged.
  serve-timing     src/serve/ never touches std::chrono::steady_clock
                   directly; the serve hot path takes timestamps through
                   the obs clock surface (obs::Clock / obs::now /
                   obs::now_ns in src/obs/clock.hpp), so trace spans,
                   stats and metrics all share one time base and the
                   tracing cost model stays auditable in one place.
                   Zero-waiver by policy.
  unbuilt-source   (only with --compile-commands) every .cpp under src/
                   appears in compile_commands.json, catching sources
                   dropped from the build.

Waivers: append `// dstee-lint: allow(<rule>)` (ideally with a reason
after ` -- `) to the offending line, or put it on its own line directly
above. Waivers are the documented escape hatch; src/runtime/ and
src/serve/ lock state must instead be annotated for real.

Usage:
  dstee_lint.py [--root REPO] [--compile-commands build/compile_commands.json]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = {
    "raw-thread": "raw std::thread outside src/runtime/",
    "unguarded-mutex": "naked std::mutex or util::Mutex with no annotation user",
    "evalop-clone": "EvalOp subclass without a clone() override",
    "kernel-intraop": "kernel reads the process pool instead of IntraOp",
    "serve-epilogue": "serve code calls a raw activation kernel, not Epilogue",
    "hot-swap-rcu": "shared_ptr<const CompiledNet> member outside util::RcuCell",
    "simd-confinement": "SIMD intrinsics outside src/kernels/simd/",
    "include-hygiene": "concurrency symbol without its direct #include",
    "serve-timing": "serve code reads steady_clock instead of the obs clock",
    "unbuilt-source": "src/ .cpp missing from compile_commands.json",
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# Symbols whose use demands a direct include (concurrency surface only —
# deliberately narrow so the rule stays high-signal).
INCLUDE_MAP = [
    (re.compile(r"\bstd::(mutex|lock_guard|unique_lock|scoped_lock|recursive_mutex|timed_mutex)\b"), "mutex"),
    (re.compile(r"\bstd::condition_variable(_any)?\b"), "condition_variable"),
    (re.compile(r"\bstd::(thread|this_thread)\b"), "thread"),
    (re.compile(r"\bstd::atomic\b"), "atomic"),
    (re.compile(r"\bstd::(future|promise|async|shared_future)\b"), "future"),
]

WAIVER_RE = re.compile(r"//\s*dstee-lint:\s*allow\(([a-z\-,\s]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines so
    line numbers survive. Good enough for token scans; not a C++ parser."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def waived_lines(raw_lines: list[str]) -> dict[int, set[str]]:
    """1-based line -> set of waived rule names. A waiver covers its own
    line and the line directly below it (the standalone-comment-above
    form)."""
    waived: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        waived.setdefault(idx, set()).update(rules)
        waived.setdefault(idx + 1, set()).update(rules)
    return waived


class FileScan:
    def __init__(self, path: Path, root: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.stripped = strip_comments_and_strings(self.raw)
        self.lines = self.stripped.splitlines()
        self.waived = waived_lines(self.raw_lines)

    def is_waived(self, line: int, rule: str) -> bool:
        return rule in self.waived.get(line, set())


def scan_raw_thread(fs: FileScan, findings: list[Finding]) -> None:
    if fs.rel.startswith("src/runtime/"):
        return
    pat = re.compile(r"\bstd::thread\b(?!\s*::)")
    for ln, line in enumerate(fs.lines, start=1):
        if pat.search(line) and not fs.is_waived(ln, "raw-thread"):
            findings.append(Finding(
                fs.path, ln, "raw-thread",
                "raw std::thread in library code; use runtime::Pool / "
                "runtime::IntraOp (threads live in src/runtime/ only)"))


MUTEX_DECL_RE = re.compile(
    r"^\s*(?:static\s+|mutable\s+)*(?:dstee::)?(?:util::)?Mutex\s+(\w+)\s*[;{=]")
NAKED_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(?:_any)?)\b")
ANNOTATION_USER_RE = (
    r"DSTEE_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY)\("
    r"[^)]*\b{name}\b")


def scan_unguarded_mutex(fs: FileScan, findings: list[Finding]) -> None:
    if fs.rel == "src/util/sync.hpp":
        return  # the one place allowed to name the std types
    for ln, line in enumerate(fs.lines, start=1):
        m = NAKED_RE.search(line)
        if m and "#include" not in line and not fs.is_waived(ln, "unguarded-mutex"):
            findings.append(Finding(
                fs.path, ln, "unguarded-mutex",
                f"naked std::{m.group(1)} is invisible to thread-safety "
                "analysis; use util::Mutex / util::CondVar (util/sync.hpp)"))
    for ln, line in enumerate(fs.lines, start=1):
        m = MUTEX_DECL_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        user = re.compile(ANNOTATION_USER_RE.format(name=re.escape(name)))
        if user.search(fs.stripped):
            continue
        if fs.is_waived(ln, "unguarded-mutex"):
            continue
        findings.append(Finding(
            fs.path, ln, "unguarded-mutex",
            f"util::Mutex '{name}' has no DSTEE_GUARDED_BY/DSTEE_REQUIRES "
            "user in this file; annotate what it protects or add a "
            "dstee-lint waiver with the reason"))


CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(\w+)(\s+final)?\s*:\s*"
    r"((?:public|private|protected)?\s*[\w:]+(?:<[\w:,\s]*>)?"
    r"(?:\s*,\s*(?:public|private|protected)?\s*[\w:]+(?:<[\w:,\s]*>)?)*)\s*\{")


def scan_evalop_clone(scans: list[FileScan], findings: list[Finding]) -> None:
    classes = {}  # name -> (fs, line, final, bases, body)
    for fs in scans:
        if not fs.rel.startswith("src/serve/"):
            continue
        for m in CLASS_RE.finditer(fs.stripped):
            name = m.group(1)
            is_final = bool(m.group(2))
            # Drop access specifiers, namespace qualifiers and template
            # arguments: `public CsrOp<M>` -> `CsrOp`, so a class template
            # base still anchors the EvalOp hierarchy walk.
            bases = [b.strip().split("<")[0].split()[-1].split("::")[-1]
                     for b in m.group(3).split(",")]
            # Body: from the opening brace to its match.
            depth, i = 0, m.end() - 1
            start = i
            while i < len(fs.stripped):
                if fs.stripped[i] == "{":
                    depth += 1
                elif fs.stripped[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            body = fs.stripped[start:i + 1]
            line = fs.stripped[:m.start()].count("\n") + 1
            classes[name] = (fs, line, is_final, bases, body)

    def in_hierarchy(name: str, seen=None) -> bool:
        if name == "EvalOp":
            return True
        if name not in classes:
            return False
        seen = seen or set()
        if name in seen:
            return False
        seen.add(name)
        return any(in_hierarchy(b, seen) for b in classes[name][3])

    derived_from = {b for (_, _, _, bases, _) in classes.values() for b in bases}
    for name, (fs, line, is_final, bases, body) in classes.items():
        if name == "EvalOp" or not in_hierarchy(name):
            continue
        is_leaf = is_final or name not in derived_from
        if not is_leaf:
            continue  # abstract intermediates (e.g. CsrOp) need no clone
        if re.search(r"\bclone\s*\(", body):
            continue
        if fs.is_waived(line, "evalop-clone"):
            continue
        findings.append(Finding(
            fs.path, line, "evalop-clone",
            f"EvalOp subclass '{name}' does not override clone(); replica "
            "shards would silently share its state"))


def scan_kernel_intraop(fs: FileScan, findings: list[Finding]) -> None:
    if not fs.rel.startswith("src/kernels/"):
        return
    pat = re.compile(r"\b(default_pool|intra_op_default)\s*\(")
    for ln, line in enumerate(fs.lines, start=1):
        m = pat.search(line)
        if m and not fs.is_waived(ln, "kernel-intraop"):
            findings.append(Finding(
                fs.path, ln, "kernel-intraop",
                f"kernel reads runtime::{m.group(1)}() directly; accept a "
                "runtime::IntraOp parameter so callers own the policy"))


# Raw activation kernels are training-path compat wrappers; the serve
# layer expresses activations as a kernels::Epilogue (fusable into the
# producing CSR op) and applies them with apply_epilogue.
RAW_ACT_RE = re.compile(r"\bkernels::(relu|add_relu|leaky_relu|sigmoid|tanh)\s*\(")


def scan_serve_epilogue(fs: FileScan, findings: list[Finding]) -> None:
    if not fs.rel.startswith("src/serve/"):
        return
    for ln, line in enumerate(fs.lines, start=1):
        m = RAW_ACT_RE.search(line)
        if m and not fs.is_waived(ln, "serve-epilogue"):
            findings.append(Finding(
                fs.path, ln, "serve-epilogue",
                f"serve code calls kernels::{m.group(1)}() directly; compose "
                "a kernels::Epilogue and use apply_epilogue so the "
                "activation stays fusable into the producing CSR op"))


# A hot-swap version pointer held as a plain member field. Members follow
# the repo's trailing-underscore convention, which is what separates a
# swappable field (must be an RcuCell) from a harmless local snapshot or a
# function parameter.
HOT_SWAP_MEMBER_RE = re.compile(
    r"\bstd::shared_ptr\s*<\s*const\s+(?:serve::)?CompiledNet\s*>\s+"
    r"(\w+_)\s*[;={]")


def scan_hot_swap_rcu(fs: FileScan, findings: list[Finding]) -> None:
    if fs.rel == "src/util/rcu.hpp":
        return  # the helper itself wraps the raw atomic shared_ptr
    for ln, line in enumerate(fs.lines, start=1):
        m = HOT_SWAP_MEMBER_RE.search(line)
        if m and not fs.is_waived(ln, "hot-swap-rcu"):
            findings.append(Finding(
                fs.path, ln, "hot-swap-rcu",
                f"member '{m.group(1)}' holds a hot-swappable CompiledNet in "
                "a plain shared_ptr; concurrent swap/load tears — hold it in "
                "util::RcuCell<CompiledNet> (util/rcu.hpp)"))


# Intrinsic headers (immintrin.h and the narrower x86 *intrin.h family)
# and intrinsic identifiers: _mm_/_mm256_/_mm512_ calls and the __m128/
# __m256/__m512 register types (with d/i suffixes).
SIMD_INCLUDE_RE = re.compile(r"#\s*include\s*<\w*intrin\.h>")
SIMD_IDENT_RE = re.compile(r"\b(?:_mm(?:\d+)?_\w+|__m(?:64|128|256|512)[di]?)\b")


def scan_simd_confinement(fs: FileScan, findings: list[Finding]) -> None:
    if fs.rel.startswith("src/kernels/simd/"):
        return
    for ln, line in enumerate(fs.lines, start=1):
        if SIMD_INCLUDE_RE.search(fs.raw_lines[ln - 1]) \
                and not fs.is_waived(ln, "simd-confinement"):
            findings.append(Finding(
                fs.path, ln, "simd-confinement",
                "intrinsics header included outside src/kernels/simd/; talk "
                "to the dispatch surface (kernels/simd/backend.hpp) instead"))
            continue
        m = SIMD_IDENT_RE.search(line)
        if m and not fs.is_waived(ln, "simd-confinement"):
            findings.append(Finding(
                fs.path, ln, "simd-confinement",
                f"SIMD intrinsic '{m.group(0)}' outside src/kernels/simd/; "
                "add a KernelBackend kernel there and dispatch through "
                "kernels/simd/backend.hpp"))


# The serve layer's one sanctioned timing surface is src/obs/clock.hpp
# (obs::Clock aliases steady_clock there, once). Naming steady_clock in
# src/serve/ bypasses it — spans, stats and metrics would stop sharing a
# time base. Deliberately waiver-free: there is no valid exception.
SERVE_TIMING_RE = re.compile(r"\bsteady_clock\b")


def scan_serve_timing(fs: FileScan, findings: list[Finding]) -> None:
    if not fs.rel.startswith("src/serve/"):
        return
    for ln, line in enumerate(fs.lines, start=1):
        if SERVE_TIMING_RE.search(line) and not fs.is_waived(ln, "serve-timing"):
            findings.append(Finding(
                fs.path, ln, "serve-timing",
                "serve code names std::chrono::steady_clock directly; take "
                "timestamps through obs::Clock / obs::now / obs::now_ns "
                "(src/obs/clock.hpp) so spans, stats and metrics share one "
                "time base"))


def scan_include_hygiene(fs: FileScan, findings: list[Finding]) -> None:
    includes = {}
    for ln, line in enumerate(fs.raw_lines, start=1):
        m = re.match(r'\s*#\s*include\s*([<"][^>"]+[>"])', line)
        if m:
            if m.group(1) in includes and not fs.is_waived(ln, "include-hygiene"):
                findings.append(Finding(
                    fs.path, ln, "include-hygiene",
                    f"duplicate #include {m.group(1)}"))
            includes.setdefault(m.group(1), ln)
    for pat, header in INCLUDE_MAP:
        m = pat.search(fs.stripped)
        if not m:
            continue
        if f"<{header}>" in includes:
            continue
        ln = fs.stripped[:m.start()].count("\n") + 1
        if fs.is_waived(ln, "include-hygiene"):
            continue
        findings.append(Finding(
            fs.path, ln, "include-hygiene",
            f"uses {m.group(0)} without a direct #include <{header}>"))


def scan_unbuilt_sources(root: Path, compile_commands: Path,
                         findings: list[Finding]) -> None:
    try:
        entries = json.loads(compile_commands.read_text())
    except (OSError, json.JSONDecodeError) as e:
        findings.append(Finding(compile_commands, 1, "unbuilt-source",
                                f"cannot read compile_commands.json: {e}"))
        return
    built = set()
    for entry in entries:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        try:
            built.add(f.resolve())
        except OSError:
            pass
    for path in sorted((root / "src").rglob("*.cpp")):
        if path.resolve() not in built:
            findings.append(Finding(
                path, 1, "unbuilt-source",
                "not listed in compile_commands.json — dropped from the "
                "build?"))


def collect_files(root: Path) -> list[Path]:
    files = []
    for sub in ("src", "tools"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            # The lint's own known-bad fixtures are linted with
            # --root fixtures/ by the selftest, never as tree sources.
            rel = path.relative_to(root).as_posix()
            if rel.startswith("tools/dstee_lint/fixtures/"):
                continue
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2],
                    help="repository root (default: this script's repo)")
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json for the unbuilt-source rule")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:18} {desc}")
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"dstee_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    scans = [FileScan(p, root) for p in collect_files(root)]
    for fs in scans:
        scan_raw_thread(fs, findings)
        scan_unguarded_mutex(fs, findings)
        scan_kernel_intraop(fs, findings)
        scan_serve_epilogue(fs, findings)
        scan_hot_swap_rcu(fs, findings)
        scan_simd_confinement(fs, findings)
        scan_serve_timing(fs, findings)
        scan_include_hygiene(fs, findings)
    scan_evalop_clone(scans, findings)
    if args.compile_commands is not None:
        scan_unbuilt_sources(root, args.compile_commands, findings)

    for f in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(f)
    if findings:
        print(f"dstee_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"dstee_lint: clean ({len(scans)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
