#!/usr/bin/env python3
"""Fixture selftest for dstee_lint: proves every rule FIRES on a known-bad
snippet and stays QUIET on the blessed pattern next to it. Run as the
`tools.dstee_lint_selftest` CTest case; the companion `tools.dstee_lint_tree`
case proves the real tree is clean.

Asserts the exact finding set — (relative path, rule) pairs with expected
multiplicity — so a rule that silently stops firing (or starts
double-reporting) fails the build, not just a rule that over-fires.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINT = HERE / "dstee_lint.py"
FIXTURES = HERE / "fixtures"

# Every finding the fixture tree must produce — nothing more, nothing less.
EXPECTED = sorted([
    ("src/data/bad_include.cpp", "include-hygiene"),      # duplicate include
    ("src/data/bad_include.cpp", "include-hygiene"),      # atomic w/o header
    ("src/kernels/bad_kernel.cpp", "kernel-intraop"),     # default_pool()
    ("src/kernels/bad_kernel.cpp", "kernel-intraop"),     # intra_op_default()
    ("src/methods/bad_thread.cpp", "raw-thread"),
    ("src/serve/bad_evalop.hpp", "evalop-clone"),         # LeafNoClone
    ("src/serve/bad_hotswap.hpp", "hot-swap-rcu"),        # plain member
    ("src/serve/bad_evalop.hpp", "evalop-clone"),         # DirectNoClone
    ("src/serve/bad_evalop.hpp", "evalop-clone"),         # TmplLeafNoClone
    ("src/serve/bad_mutex.hpp", "unguarded-mutex"),       # naked std::mutex
    ("src/serve/bad_mutex.hpp", "unguarded-mutex"),       # orphan util::Mutex
    ("src/serve/bad_raw_act.cpp", "serve-epilogue"),      # raw kernels::relu
    ("src/serve/bad_simd.cpp", "simd-confinement"),       # <immintrin.h>
    ("src/serve/bad_simd.cpp", "simd-confinement"),       # __m256/_mm256 load
    ("src/serve/bad_simd.cpp", "simd-confinement"),       # _mm256 store
    ("src/serve/bad_timing.cpp", "serve-timing"),         # raw steady_clock
])

FINDING_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+): \[(?P<rule>[a-z\-]+)\]")


def main() -> int:
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(FIXTURES)],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print(f"FAIL: expected exit 1 on fixtures, got {proc.returncode}\n"
              f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        return 1

    got = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        rel = Path(m.group("path")).resolve().relative_to(FIXTURES).as_posix()
        got.append((rel, m.group("rule")))
    got.sort()

    if got != EXPECTED:
        print("FAIL: finding set mismatch")
        for f in sorted(set(EXPECTED) - set(got)) + \
                [e for e in EXPECTED if got.count(e) < EXPECTED.count(e)]:
            print(f"  missing: {f}")
        for f in [g for g in got if EXPECTED.count(g) < got.count(g)] + \
                sorted(set(got) - set(EXPECTED)):
            print(f"  unexpected: {f}")
        print(f"raw output:\n{proc.stdout}")
        return 1

    # --list-rules must enumerate every rule the fixtures exercise.
    rules = subprocess.run(
        [sys.executable, str(LINT), "--list-rules"],
        capture_output=True, text=True)
    listed = {line.split()[0] for line in rules.stdout.splitlines() if line}
    exercised = {rule for _, rule in EXPECTED}
    if not exercised <= listed:
        print(f"FAIL: --list-rules missing {exercised - listed}")
        return 1

    print(f"OK: {len(EXPECTED)} expected findings, all rules fire, "
          "clean fixtures stay clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
