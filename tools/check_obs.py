#!/usr/bin/env python3
"""Validator for dstee_serve's observability artifacts (stdlib only).

Checks a Chrome trace-event JSON file written by --trace and a Prometheus
text exposition written by --metrics-out:

  trace   - parses as JSON with a non-empty traceEvents list
          - every complete ("X") event has sane fields (dur >= 0)
          - events nest properly per (pid, tid) lane: no span partially
            overlaps an enclosing span
          - for every sampled request (pid 2 lane): request, queue and
            batch spans exist, queue starts WITH the request, batch starts
            WHERE queue ends, and queue.dur + batch.dur == request.dur
            exactly (the three derive from the same three clock stamps)
          - at least one per-PlanOp "op" span was recorded
  metrics - every sample's metric family has a preceding # TYPE line
          - histogram cumulative buckets are monotone non-decreasing in
            ascending le order, and the +Inf bucket equals _count
          - every sample value parses as a number

Exit status 0 and "CHECK OBS OK" on success; 1 with a diagnostic on the
first failure. Used by the tools.check_obs CTest case.
"""

import argparse
import json
import math
import re
import sys


def fail(msg):
    print("check_obs: FAIL: " + msg)
    sys.exit(1)


def ns(us_value):
    """Trace timestamps are microseconds with ns resolution; exact in int."""
    return round(us_value * 1000.0)


def check_trace(path, slack_ns):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    spans = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        for field in ("name", "pid", "tid", "ts", "dur"):
            if field not in ev:
                fail(f"{path}: X event missing '{field}': {ev}")
        if ev["dur"] < 0:
            fail(f"{path}: negative duration: {ev}")
        spans.append(ev)
    if not spans:
        fail(f"{path}: no complete (ph=X) spans")

    # Nesting: within one lane, a span must not PARTIALLY overlap an
    # enclosing span. Sort by (start, -dur) so parents precede children.
    lanes = {}
    for ev in spans:
        lanes.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for lane, lane_spans in sorted(lanes.items()):
        lane_spans.sort(key=lambda e: (ns(e["ts"]), -ns(e["dur"])))
        stack = []
        for ev in lane_spans:
            start, end = ns(ev["ts"]), ns(ev["ts"]) + ns(ev["dur"])
            while stack and start >= stack[-1][1] - slack_ns:
                stack.pop()
            if stack and end > stack[-1][1] + slack_ns:
                fail(
                    f"{path}: lane {lane}: span '{ev['name']}' "
                    f"[{start}, {end}] pokes out of enclosing "
                    f"'{stack[-1][2]}' ending at {stack[-1][1]}"
                )
            stack.append((start, end, ev["name"]))

    # Request lanes (pid 2): queue + batch tile the request exactly.
    requests = {}
    for ev in spans:
        if ev["pid"] != 2:
            continue
        tid = ev["tid"]
        requests.setdefault(tid, {})[ev["name"]] = ev
    if not requests:
        fail(f"{path}: no sampled-request lanes (pid 2)")
    for tid, by_name in sorted(requests.items()):
        for required in ("request", "queue", "batch"):
            if required not in by_name:
                fail(f"{path}: request {tid} has no '{required}' span")
        req, queue, batch = (
            by_name["request"],
            by_name["queue"],
            by_name["batch"],
        )
        if abs(ns(queue["ts"]) - ns(req["ts"])) > slack_ns:
            fail(f"{path}: request {tid}: queue does not start with request")
        queue_end = ns(queue["ts"]) + ns(queue["dur"])
        if abs(ns(batch["ts"]) - queue_end) > slack_ns:
            fail(f"{path}: request {tid}: batch does not start at queue end")
        total = ns(queue["dur"]) + ns(batch["dur"])
        if abs(total - ns(req["dur"])) > slack_ns:
            fail(
                f"{path}: request {tid}: queue+batch = {total} ns != "
                f"request {ns(req['dur'])} ns"
            )

    ops = [ev for ev in spans if ev.get("cat") == "op"]
    if not ops:
        fail(f"{path}: no per-PlanOp 'op' spans recorded")
    print(
        f"check_obs: trace ok ({len(spans)} spans, {len(requests)} sampled "
        f"requests, {len(ops)} op spans, {len(lanes)} lanes)"
    )


SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


def base_family(name):
    """Histogram series report under the family of their # TYPE line."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(path):
    types = {}
    histograms = {}  # family -> {labels-minus-le: [(le, count)]}
    counts = {}  # family -> {labels: value} from _count lines
    samples = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                ):
                    fail(f"{path}:{lineno}: malformed TYPE line: {line}")
                types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparseable sample line: {line}")
            name = m.group("name")
            labels = m.group("labels") or ""
            family = base_family(name)
            if family not in types:
                fail(
                    f"{path}:{lineno}: sample '{name}' has no preceding "
                    f"# TYPE {family} line"
                )
            try:
                value = float(m.group("value").replace("+Inf", "inf"))
            except ValueError:
                fail(f"{path}:{lineno}: bad sample value: {line}")
            samples += 1
            if types[family] != "histogram":
                continue
            if name.endswith("_bucket"):
                le_m = re.search(r'le="([^"]+)"', labels)
                if not le_m:
                    fail(f"{path}:{lineno}: bucket without le label: {line}")
                le = (
                    math.inf
                    if le_m.group(1) == "+Inf"
                    else float(le_m.group(1))
                )
                key = re.sub(r',?le="[^"]+"', "", labels)
                histograms.setdefault(family, {}).setdefault(key, []).append(
                    (le, value)
                )
            elif name.endswith("_count"):
                counts.setdefault(family, {})[labels] = value
    if samples == 0:
        fail(f"{path}: no metric samples")

    for family, series in sorted(histograms.items()):
        for key, buckets in sorted(series.items()):
            buckets.sort(key=lambda b: b[0])
            prev = -1.0
            for le, count in buckets:
                if count < prev:
                    fail(
                        f"{path}: histogram {family}{key}: bucket le={le} "
                        f"count {count} < previous {prev} (not cumulative)"
                    )
                prev = count
            if buckets[-1][0] != math.inf:
                fail(f"{path}: histogram {family}{key}: no +Inf bucket")
            total = counts.get(family, {}).get(key)
            if total is None:
                fail(f"{path}: histogram {family}{key}: no _count sample")
            if buckets[-1][1] != total:
                fail(
                    f"{path}: histogram {family}{key}: +Inf bucket "
                    f"{buckets[-1][1]} != _count {total}"
                )
    print(
        f"check_obs: metrics ok ({len(types)} families, {samples} samples, "
        f"{len(histograms)} histograms)"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace JSON from --trace")
    parser.add_argument(
        "--metrics", help="Prometheus text from --metrics-out"
    )
    parser.add_argument(
        "--slack-ns",
        type=int,
        default=0,
        help="tolerance for span-arithmetic checks (spans derive from "
        "shared integer stamps, so 0 is expected to hold)",
    )
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")
    if args.trace:
        check_trace(args.trace, args.slack_ns)
    if args.metrics:
        check_metrics(args.metrics)
    print("CHECK OBS OK")


if __name__ == "__main__":
    main()
